//! The lock manager: blocking acquisition, Strict 2PL release, waits-for
//! deadlock detection, timeouts and victim cancellation.
//!
//! The paper's prototype "uses Strict 2PL to prevent all other isolation
//! anomalies … implemented using the lock manager of the DBMS" (§5.1). This
//! is that lock manager. Grounding reads take shared locks that are held to
//! commit, which is exactly what rules out the Figure 3(b) unrepeatable
//! quasi-read; relaxed isolation levels release read locks early via
//! [`LockManager::release`].

use crate::event::{LockEvent, LockEventSink, SinkSlot};
use crate::mode::LockMode;
use crate::resource::{Resource, TxId};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a lock request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// Granting would close a waits-for cycle; the requester is the victim.
    Deadlock,
    /// The request did not succeed within its timeout.
    Timeout,
    /// The transaction was cancelled (aborted externally) while waiting.
    Canceled,
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Deadlock => write!(f, "deadlock detected; requester chosen as victim"),
            LockError::Timeout => write!(f, "lock wait timed out"),
            LockError::Canceled => write!(f, "transaction cancelled while waiting for lock"),
        }
    }
}

impl std::error::Error for LockError {}

#[derive(Debug, Clone)]
struct Request {
    tx: TxId,
    mode: LockMode,
}

#[derive(Debug, Default)]
struct Queue {
    granted: Vec<Request>,
    waiting: VecDeque<Request>,
}

impl Queue {
    fn granted_mode(&self, tx: TxId) -> Option<LockMode> {
        self.granted.iter().find(|r| r.tx == tx).map(|r| r.mode)
    }

    /// Can `tx` be granted `mode` given current grants (ignoring waiters)?
    fn compatible_with_granted(&self, tx: TxId, mode: LockMode) -> bool {
        self.granted
            .iter()
            .filter(|r| r.tx != tx)
            .all(|r| r.mode.compatible(mode))
    }
}

#[derive(Default)]
struct State {
    queues: HashMap<Resource, Queue>,
    /// Resources each transaction holds (for O(held) release).
    held: HashMap<TxId, HashSet<Resource>>,
    canceled: HashSet<TxId>,
}

impl State {
    /// Promote waiters on `res` in FIFO order; upgrades are considered
    /// first. Returns true if anything was granted.
    fn promote(&mut self, res: &Resource) -> bool {
        let Some(q) = self.queues.get_mut(res) else {
            return false;
        };
        let mut granted_any = false;
        loop {
            // Upgrade waiters (already in granted with a lesser mode) may
            // jump the queue: find the first waiting upgrade that fits.
            let mut advanced = false;
            for i in 0..q.waiting.len() {
                let w = q.waiting[i].clone();
                let already = q.granted_mode(w.tx);
                let target = match already {
                    Some(m) => m.combine(w.mode),
                    None => w.mode,
                };
                let fits = q.compatible_with_granted(w.tx, target);
                let is_upgrade = already.is_some();
                // FIFO for fresh requests: only the head may be granted;
                // upgrades may be granted from any position.
                if fits && (is_upgrade || i == 0) {
                    q.waiting.remove(i);
                    match q.granted.iter_mut().find(|r| r.tx == w.tx) {
                        Some(r) => r.mode = target,
                        None => q.granted.push(Request {
                            tx: w.tx,
                            mode: target,
                        }),
                    }
                    self.held.entry(w.tx).or_default().insert(res.clone());
                    granted_any = true;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }
        if q.granted.is_empty() && q.waiting.is_empty() {
            self.queues.remove(res);
        }
        granted_any
    }

    /// Build the waits-for edge set: waiter → (incompatible holders and
    /// incompatible earlier waiters) per resource.
    fn waits_for(&self) -> HashMap<TxId, HashSet<TxId>> {
        let mut edges: HashMap<TxId, HashSet<TxId>> = HashMap::new();
        for q in self.queues.values() {
            for (i, w) in q.waiting.iter().enumerate() {
                let target = match q.granted_mode(w.tx) {
                    Some(m) => m.combine(w.mode),
                    None => w.mode,
                };
                let e = edges.entry(w.tx).or_default();
                for g in &q.granted {
                    if g.tx != w.tx && !g.mode.compatible(target) {
                        e.insert(g.tx);
                    }
                }
                for earlier in q.waiting.iter().take(i) {
                    if earlier.tx != w.tx && !earlier.mode.compatible(target) {
                        e.insert(earlier.tx);
                    }
                }
            }
        }
        edges
    }

    /// Does the waits-for graph contain a cycle through `start`?
    fn in_cycle(&self, start: TxId) -> bool {
        let edges = self.waits_for();
        // DFS from start looking for a path back to start.
        let mut stack: Vec<TxId> = edges.get(&start).into_iter().flatten().copied().collect();
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == start {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = edges.get(&n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    }

    fn remove_waiter(&mut self, tx: TxId, res: &Resource) {
        if let Some(q) = self.queues.get_mut(res) {
            q.waiting.retain(|r| r.tx != tx);
            if q.granted.is_empty() && q.waiting.is_empty() {
                self.queues.remove(res);
            }
        }
    }
}

/// Counters exposed for benchmarks and tests.
#[derive(Debug, Default)]
pub struct LockStats {
    pub grants: AtomicU64,
    pub waits: AtomicU64,
    pub deadlocks: AtomicU64,
    pub timeouts: AtomicU64,
}

/// A blocking, deadlock-detecting Strict 2PL lock manager.
pub struct LockManager {
    state: Mutex<State>,
    cv: Condvar,
    stats: LockStats,
    sink: Option<SinkSlot>,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LockManager {
    pub fn new() -> LockManager {
        LockManager {
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            stats: LockStats::default(),
            sink: None,
        }
    }

    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Install an audit sink that observes every lock event this manager
    /// emits, stamped with `shard`. Must be called before the manager is
    /// shared across threads (hence `&mut self` — no runtime cost when no
    /// sink is installed).
    pub fn set_sink(&mut self, shard: usize, sink: Arc<dyn LockEventSink>) {
        self.sink = Some(SinkSlot { shard, sink });
    }

    #[inline]
    fn emit(&self, mk: impl FnOnce(usize) -> LockEvent) {
        if let Some(slot) = &self.sink {
            slot.sink.on_event(&mk(slot.shard));
        }
    }

    /// Acquire `mode` on `res` for `tx`, blocking up to `timeout`
    /// (`None` = wait forever). Re-acquiring a covered mode is a no-op;
    /// acquiring a stronger mode performs an upgrade.
    pub fn lock(
        &self,
        tx: TxId,
        res: Resource,
        mode: LockMode,
        timeout: Option<Duration>,
    ) -> Result<(), LockError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut st = self.state.lock();
        if st.canceled.contains(&tx) {
            return Err(LockError::Canceled);
        }
        let q = st.queues.entry(res.clone()).or_default();
        let already = q.granted_mode(tx);
        let target = match already {
            Some(m) if m.covers(mode) => {
                self.stats.grants.fetch_add(1, Ordering::Relaxed);
                self.emit(|shard| LockEvent::Granted {
                    tx,
                    res,
                    mode: m,
                    shard,
                });
                return Ok(());
            }
            Some(m) => m.combine(mode),
            None => mode,
        };

        // Immediate grant: compatible with grants, and — for fresh requests
        // — nobody already waiting (FIFO fairness). Upgrades may overtake.
        let can_grant =
            q.compatible_with_granted(tx, target) && (already.is_some() || q.waiting.is_empty());
        if can_grant {
            match q.granted.iter_mut().find(|r| r.tx == tx) {
                Some(r) => r.mode = target,
                None => q.granted.push(Request { tx, mode: target }),
            }
            st.held.entry(tx).or_default().insert(res.clone());
            self.stats.grants.fetch_add(1, Ordering::Relaxed);
            self.emit(|shard| LockEvent::Granted {
                tx,
                res,
                mode: target,
                shard,
            });
            return Ok(());
        }

        // Must wait. Upgrades go to the front so they cannot starve behind
        // fresh requests they are incompatible with.
        let req = Request { tx, mode };
        if already.is_some() {
            q.waiting.push_front(req);
        } else {
            q.waiting.push_back(req);
        }
        self.stats.waits.fetch_add(1, Ordering::Relaxed);
        self.emit(|shard| LockEvent::Wait {
            tx,
            res: res.clone(),
            mode,
            shard,
        });

        // Deadlock check with the new edge in place: requester is victim.
        if st.in_cycle(tx) {
            st.remove_waiter(tx, &res);
            self.stats.deadlocks.fetch_add(1, Ordering::Relaxed);
            // Our departure may unblock others.
            st.promote(&res);
            self.cv.notify_all();
            self.emit(|shard| LockEvent::Deadlock {
                tx,
                res: res.clone(),
                mode,
                shard,
            });
            return Err(LockError::Deadlock);
        }

        loop {
            // Granted?
            if let Some(q) = st.queues.get(&res) {
                if let Some(m) = q.granted_mode(tx).filter(|m| m.covers(mode)) {
                    self.stats.grants.fetch_add(1, Ordering::Relaxed);
                    self.emit(|shard| LockEvent::Granted {
                        tx,
                        res,
                        mode: m,
                        shard,
                    });
                    return Ok(());
                }
            }
            if st.canceled.contains(&tx) {
                st.remove_waiter(tx, &res);
                st.promote(&res);
                self.cv.notify_all();
                return Err(LockError::Canceled);
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d || self.cv.wait_until(&mut st, d).timed_out() {
                        // Re-check: promotion may have raced the timeout.
                        if let Some(q) = st.queues.get(&res) {
                            if let Some(m) = q.granted_mode(tx).filter(|m| m.covers(mode)) {
                                self.stats.grants.fetch_add(1, Ordering::Relaxed);
                                self.emit(|shard| LockEvent::Granted {
                                    tx,
                                    res,
                                    mode: m,
                                    shard,
                                });
                                return Ok(());
                            }
                        }
                        st.remove_waiter(tx, &res);
                        st.promote(&res);
                        self.cv.notify_all();
                        self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                        self.emit(|shard| LockEvent::Timeout {
                            tx,
                            res: res.clone(),
                            mode,
                            shard,
                        });
                        return Err(LockError::Timeout);
                    }
                }
                None => self.cv.wait(&mut st),
            }
        }
    }

    /// Non-blocking acquire.
    pub fn try_lock(&self, tx: TxId, res: Resource, mode: LockMode) -> bool {
        let mut st = self.state.lock();
        if st.canceled.contains(&tx) {
            return false;
        }
        let q = st.queues.entry(res.clone()).or_default();
        let target = match q.granted_mode(tx) {
            Some(m) if m.covers(mode) => {
                self.emit(|shard| LockEvent::Granted {
                    tx,
                    res,
                    mode: m,
                    shard,
                });
                return true;
            }
            Some(m) => m.combine(mode),
            None => mode,
        };
        let fresh = q.granted_mode(tx).is_none();
        if q.compatible_with_granted(tx, target) && (!fresh || q.waiting.is_empty()) {
            match q.granted.iter_mut().find(|r| r.tx == tx) {
                Some(r) => r.mode = target,
                None => q.granted.push(Request { tx, mode: target }),
            }
            st.held.entry(tx).or_default().insert(res.clone());
            self.stats.grants.fetch_add(1, Ordering::Relaxed);
            self.emit(|shard| LockEvent::Granted {
                tx,
                res,
                mode: target,
                shard,
            });
            true
        } else {
            false
        }
    }

    /// Release one resource early (used by relaxed isolation levels — this
    /// is exactly the "altering the length of time locks are held" knob §4
    /// mentions). Under full entangled isolation this is never called;
    /// everything is released at commit/abort by [`Self::unlock_all`].
    pub fn release(&self, tx: TxId, res: &Resource) {
        let mut st = self.state.lock();
        if let Some(q) = st.queues.get_mut(res) {
            q.granted.retain(|r| r.tx != tx);
        }
        if let Some(h) = st.held.get_mut(&tx) {
            h.remove(res);
        }
        st.promote(res);
        self.cv.notify_all();
        self.emit(|shard| LockEvent::Released {
            tx,
            res: res.clone(),
            shard,
        });
    }

    /// Strict 2PL release: drop every lock `tx` holds (call at
    /// commit/abort).
    pub fn unlock_all(&self, tx: TxId) {
        let mut st = self.state.lock();
        let held: Vec<Resource> = st.held.remove(&tx).into_iter().flatten().collect();
        for res in &held {
            if let Some(q) = st.queues.get_mut(res) {
                q.granted.retain(|r| r.tx != tx);
                q.waiting.retain(|r| r.tx != tx);
            }
        }
        for res in &held {
            st.promote(res);
        }
        st.canceled.remove(&tx);
        self.cv.notify_all();
        self.emit(|shard| LockEvent::ReleasedAll { tx, shard });
    }

    /// Forget every lock, waiter, and cancellation — the crash-recovery
    /// reset. A restarted engine has no lock table; leaving pre-crash
    /// grants behind would block post-recovery transactions on owners
    /// that no longer exist. Callers must guarantee no thread is waiting
    /// inside [`Self::lock`] (recovery quiesce).
    pub fn reset(&self) {
        let mut st = self.state.lock();
        st.queues.clear();
        st.held.clear();
        st.canceled.clear();
        self.cv.notify_all();
        self.emit(|shard| LockEvent::Reset { shard });
    }

    /// True when no transaction holds or awaits any lock — the quiesce
    /// precondition for a transactionally-consistent checkpoint image.
    pub fn quiescent(&self) -> bool {
        let st = self.state.lock();
        st.queues
            .values()
            .all(|q| q.granted.is_empty() && q.waiting.is_empty())
    }

    /// Cancel a transaction: any in-flight or future waits fail with
    /// [`LockError::Canceled`]. Held locks stay until `unlock_all`.
    pub fn cancel(&self, tx: TxId) {
        let mut st = self.state.lock();
        st.canceled.insert(tx);
        self.cv.notify_all();
    }

    /// Locks currently held by `tx`.
    pub fn held(&self, tx: TxId) -> Vec<(Resource, LockMode)> {
        let st = self.state.lock();
        let mut out: Vec<(Resource, LockMode)> = st
            .held
            .get(&tx)
            .into_iter()
            .flatten()
            .filter_map(|res| {
                st.queues
                    .get(res)
                    .and_then(|q| q.granted_mode(tx))
                    .map(|m| (res.clone(), m))
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Total number of resources with at least one granted or waiting
    /// request (diagnostics).
    pub fn active_resources(&self) -> usize {
        self.state.lock().queues.len()
    }

    /// Snapshot of the waits-for edges (diagnostics/tests).
    pub fn waits_for_edges(&self) -> Vec<(TxId, TxId)> {
        let st = self.state.lock();
        let mut out: Vec<(TxId, TxId)> = st
            .waits_for()
            .into_iter()
            .flat_map(|(w, hs)| hs.into_iter().map(move |h| (w, h)))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::LockMode::*;
    use std::sync::Arc;

    fn t(n: u64) -> TxId {
        TxId(n)
    }

    #[test]
    fn reset_clears_grants_and_quiescence_tracks_them() {
        let lm = LockManager::new();
        assert!(lm.quiescent());
        lm.lock(t(1), Resource::table("a"), X, None).unwrap();
        lm.cancel(t(2));
        assert!(!lm.quiescent());
        lm.reset();
        assert!(lm.quiescent());
        assert!(lm.held(t(1)).is_empty());
        // A new owner can take the lock immediately, and the stale
        // cancellation is gone.
        lm.lock(t(3), Resource::table("a"), X, None).unwrap();
        lm.lock(t(2), Resource::table("b"), S, None).unwrap();
        lm.unlock_all(t(3));
        lm.unlock_all(t(2));
        assert!(lm.quiescent());
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        let r = Resource::table("flights");
        lm.lock(t(1), r.clone(), S, None).unwrap();
        lm.lock(t(2), r.clone(), S, None).unwrap();
        assert_eq!(lm.held(t(1)), vec![(r.clone(), S)]);
        assert_eq!(lm.held(t(2)), vec![(r, S)]);
    }

    #[test]
    fn reacquire_is_noop_and_upgrade_works() {
        let lm = LockManager::new();
        let r = Resource::table("flights");
        lm.lock(t(1), r.clone(), S, None).unwrap();
        lm.lock(t(1), r.clone(), S, None).unwrap();
        lm.lock(t(1), r.clone(), X, None).unwrap();
        assert_eq!(lm.held(t(1)), vec![(r.clone(), X)]);
        // X covers S: re-requesting S is a no-op.
        lm.lock(t(1), r.clone(), S, None).unwrap();
        assert_eq!(lm.held(t(1)), vec![(r, X)]);
    }

    #[test]
    fn exclusive_blocks_and_try_lock_fails() {
        let lm = LockManager::new();
        let r = Resource::table("flights");
        lm.lock(t(1), r.clone(), X, None).unwrap();
        assert!(!lm.try_lock(t(2), r.clone(), S));
        assert_eq!(
            lm.lock(t(2), r.clone(), S, Some(Duration::from_millis(20))),
            Err(LockError::Timeout)
        );
        lm.unlock_all(t(1));
        assert!(lm.try_lock(t(2), r, S));
    }

    #[test]
    fn unlock_all_wakes_waiter() {
        let lm = Arc::new(LockManager::new());
        let r = Resource::table("flights");
        lm.lock(t(1), r.clone(), X, None).unwrap();
        let lm2 = lm.clone();
        let r2 = r.clone();
        let h = std::thread::spawn(move || lm2.lock(t(2), r2, S, Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(30));
        lm.unlock_all(t(1));
        assert_eq!(h.join().unwrap(), Ok(()));
        assert_eq!(lm.held(t(2)), vec![(r, S)]);
    }

    #[test]
    fn deadlock_detected_requester_victim() {
        let lm = Arc::new(LockManager::new());
        let a = Resource::table("a");
        let b = Resource::table("b");
        lm.lock(t(1), a.clone(), X, None).unwrap();
        lm.lock(t(2), b.clone(), X, None).unwrap();
        let lm2 = lm.clone();
        let (a2, b2) = (a.clone(), b.clone());
        // t1 waits for b (held by t2).
        let h = std::thread::spawn(move || lm2.lock(t(1), b2, X, Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(30));
        // t2 requesting a closes the cycle: t2 is the victim.
        let err = lm
            .lock(t(2), a.clone(), X, Some(Duration::from_secs(5)))
            .unwrap_err();
        assert_eq!(err, LockError::Deadlock);
        assert_eq!(lm.stats().deadlocks.load(Ordering::Relaxed), 1);
        // Victim aborts, releasing b; t1 proceeds.
        lm.unlock_all(t(2));
        assert_eq!(h.join().unwrap(), Ok(()));
        let _ = a2;
    }

    #[test]
    fn upgrade_deadlock_detected() {
        // Two transactions holding S both requesting X: classic upgrade
        // deadlock; the second requester must be told.
        let lm = Arc::new(LockManager::new());
        let r = Resource::table("t");
        lm.lock(t(1), r.clone(), S, None).unwrap();
        lm.lock(t(2), r.clone(), S, None).unwrap();
        let lm2 = lm.clone();
        let rr = r.clone();
        let h = std::thread::spawn(move || lm2.lock(t(1), rr, X, Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(30));
        let err = lm
            .lock(t(2), r.clone(), X, Some(Duration::from_secs(5)))
            .unwrap_err();
        assert_eq!(err, LockError::Deadlock);
        lm.unlock_all(t(2));
        assert_eq!(h.join().unwrap(), Ok(()));
    }

    #[test]
    fn cancel_aborts_waiter() {
        let lm = Arc::new(LockManager::new());
        let r = Resource::table("flights");
        lm.lock(t(1), r.clone(), X, None).unwrap();
        let lm2 = lm.clone();
        let r2 = r.clone();
        let h = std::thread::spawn(move || lm2.lock(t(2), r2, S, None));
        std::thread::sleep(Duration::from_millis(30));
        lm.cancel(t(2));
        assert_eq!(h.join().unwrap(), Err(LockError::Canceled));
        // A cancelled tx cannot take new locks until unlock_all clears it.
        assert!(!lm.try_lock(t(2), Resource::table("other"), S));
        lm.unlock_all(t(2));
        assert!(lm.try_lock(t(2), Resource::table("other"), S));
    }

    #[test]
    fn fifo_fairness_blocks_overtaking_reader() {
        // t1 holds X; t2 waits for S; t3 requests S. Under FIFO, t3 must
        // not be granted before t2 (it queues), even though S||S.
        let lm = Arc::new(LockManager::new());
        let r = Resource::table("flights");
        lm.lock(t(1), r.clone(), X, None).unwrap();
        let lm2 = lm.clone();
        let r2 = r.clone();
        let w2 = std::thread::spawn(move || lm2.lock(t(2), r2, S, Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            !lm.try_lock(t(3), r.clone(), S),
            "fresh request must queue behind waiter"
        );
        lm.unlock_all(t(1));
        assert_eq!(w2.join().unwrap(), Ok(()));
        // Now t2 holds S, and t3 can join it.
        assert!(lm.try_lock(t(3), r, S));
    }

    #[test]
    fn intention_locks() {
        let lm = LockManager::new();
        let table = Resource::table("flights");
        let row = Resource::row("flights", 0);
        lm.lock(t(1), table.clone(), IX, None).unwrap();
        lm.lock(t(1), row.clone(), X, None).unwrap();
        // IS is compatible with IX at table level.
        lm.lock(t(2), table.clone(), IS, None).unwrap();
        // But the row itself is blocked.
        assert!(!lm.try_lock(t(2), row.clone(), S));
        // And a full-table S is blocked by the IX.
        assert_eq!(
            lm.lock(t(3), table.clone(), S, Some(Duration::from_millis(20))),
            Err(LockError::Timeout)
        );
        lm.unlock_all(t(1));
        assert!(lm.try_lock(t(2), row, S));
    }

    #[test]
    fn early_release_unblocks() {
        let lm = Arc::new(LockManager::new());
        let r = Resource::table("flights");
        lm.lock(t(1), r.clone(), S, None).unwrap();
        let lm2 = lm.clone();
        let r2 = r.clone();
        let h = std::thread::spawn(move || lm2.lock(t(2), r2, X, Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(30));
        lm.release(t(1), &r);
        assert_eq!(h.join().unwrap(), Ok(()));
    }

    #[test]
    fn held_and_resource_accounting() {
        let lm = LockManager::new();
        lm.lock(t(1), Resource::table("a"), S, None).unwrap();
        lm.lock(t(1), Resource::table("b"), X, None).unwrap();
        assert_eq!(lm.held(t(1)).len(), 2);
        assert_eq!(lm.active_resources(), 2);
        lm.unlock_all(t(1));
        assert_eq!(lm.held(t(1)).len(), 0);
        assert_eq!(lm.active_resources(), 0);
    }

    #[test]
    fn waits_for_edges_snapshot() {
        let lm = Arc::new(LockManager::new());
        let r = Resource::table("flights");
        lm.lock(t(1), r.clone(), X, None).unwrap();
        let lm2 = lm.clone();
        let r2 = r.clone();
        let h = std::thread::spawn(move || lm2.lock(t(2), r2, S, Some(Duration::from_secs(2))));
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(lm.waits_for_edges(), vec![(t(2), t(1))]);
        lm.unlock_all(t(1));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn concurrent_stress_no_lost_grants() {
        // 8 threads × 50 increments under an X table lock must serialize.
        let lm = Arc::new(LockManager::new());
        let counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let lm = lm.clone();
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                for j in 0..50u64 {
                    let tx = TxId(1 + i * 1000 + j);
                    lm.lock(tx, Resource::table("c"), X, None).unwrap();
                    {
                        let mut c = counter.lock();
                        let v = *c;
                        std::hint::black_box(&v);
                        *c = v + 1;
                    }
                    lm.unlock_all(tx);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 400);
    }
}
