//! The lock manager: blocking acquisition, Strict 2PL release, waits-for
//! deadlock detection, timeouts and victim cancellation.
//!
//! The paper's prototype "uses Strict 2PL to prevent all other isolation
//! anomalies … implemented using the lock manager of the DBMS" (§5.1). This
//! is that lock manager. Grounding reads take shared locks that are held to
//! commit, which is exactly what rules out the Figure 3(b) unrepeatable
//! quasi-read; relaxed isolation levels release read locks early via
//! [`LockManager::release`].

use crate::event::{LockEvent, LockEventSink, SinkSlot};
use crate::mode::LockMode;
use crate::resource::{Resource, TxId};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a lock request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// Granting would close a waits-for cycle; the requester is the victim.
    Deadlock,
    /// The request did not succeed within its timeout.
    Timeout,
    /// The transaction was cancelled (aborted externally) while waiting.
    Canceled,
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Deadlock => write!(f, "deadlock detected; requester chosen as victim"),
            LockError::Timeout => write!(f, "lock wait timed out"),
            LockError::Canceled => write!(f, "transaction cancelled while waiting for lock"),
        }
    }
}

impl std::error::Error for LockError {}

/// Why a transaction's pending and future lock requests are refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CancelKind {
    /// Externally aborted (engine-initiated): waits fail with
    /// [`LockError::Canceled`].
    External,
    /// Convicted by the global deadlock detector: waits fail with
    /// [`LockError::Deadlock`] and count as a broken cycle.
    Victim,
}

/// Probe schedule + callback for [`LockManager::lock_probed`]: `run` is
/// fired on the waiting thread with the shard's state mutex released,
/// first after `grace` of blocking, then every `period` until the wait
/// resolves. The sharded facade points it at the global detector.
pub(crate) struct ProbeHook<'a> {
    pub grace: Duration,
    pub period: Duration,
    pub run: &'a dyn Fn(),
}

#[derive(Debug, Clone)]
struct Request {
    tx: TxId,
    mode: LockMode,
}

#[derive(Debug, Default)]
struct Queue {
    granted: Vec<Request>,
    waiting: VecDeque<Request>,
}

impl Queue {
    fn granted_mode(&self, tx: TxId) -> Option<LockMode> {
        self.granted.iter().find(|r| r.tx == tx).map(|r| r.mode)
    }

    /// Can `tx` be granted `mode` given current grants (ignoring waiters)?
    fn compatible_with_granted(&self, tx: TxId, mode: LockMode) -> bool {
        self.granted
            .iter()
            .filter(|r| r.tx != tx)
            .all(|r| r.mode.compatible(mode))
    }
}

#[derive(Default)]
pub(crate) struct State {
    queues: HashMap<Resource, Queue>,
    /// Resources each transaction holds (for O(held) release).
    held: HashMap<TxId, HashSet<Resource>>,
    canceled: HashMap<TxId, CancelKind>,
    /// Completed blocked-wait durations in microseconds, in completion
    /// order — grants, timeouts, and cancellations alike (requests
    /// served without blocking record nothing). The `hotcycle` bench
    /// derives its block-time percentiles from this.
    wait_micros: Vec<u64>,
}

impl State {
    /// Promote waiters on `res` in FIFO order; upgrades are considered
    /// first. Returns true if anything was granted.
    fn promote(&mut self, res: &Resource) -> bool {
        let State {
            queues,
            held,
            canceled,
            ..
        } = self;
        let Some(q) = queues.get_mut(res) else {
            return false;
        };
        // Canceled waiters never receive a grant, and must not block the
        // FIFO head either: drop their queue entries here. The waiting
        // thread learns its fate from the cancellation map, not from
        // queue membership.
        q.waiting.retain(|r| !canceled.contains_key(&r.tx));
        let mut granted_any = false;
        loop {
            // Upgrade waiters (already in granted with a lesser mode) may
            // jump the queue: find the first waiting upgrade that fits.
            let mut advanced = false;
            for i in 0..q.waiting.len() {
                let w = q.waiting[i].clone();
                let already = q.granted_mode(w.tx);
                let target = match already {
                    Some(m) => m.combine(w.mode),
                    None => w.mode,
                };
                let fits = q.compatible_with_granted(w.tx, target);
                let is_upgrade = already.is_some();
                // FIFO for fresh requests: only the head may be granted;
                // upgrades may be granted from any position.
                if fits && (is_upgrade || i == 0) {
                    q.waiting.remove(i);
                    match q.granted.iter_mut().find(|r| r.tx == w.tx) {
                        Some(r) => r.mode = target,
                        None => q.granted.push(Request {
                            tx: w.tx,
                            mode: target,
                        }),
                    }
                    held.entry(w.tx).or_default().insert(res.clone());
                    granted_any = true;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }
        if q.granted.is_empty() && q.waiting.is_empty() {
            queues.remove(res);
        }
        granted_any
    }

    /// Build the waits-for edge set: waiter → (incompatible holders and
    /// incompatible earlier waiters) per resource. Canceled transactions
    /// contribute no edges in either direction among waiters: they are
    /// leaving the queue, so neither their own wait nor their place ahead
    /// of others constrains anyone — a convicted victim's cycle is broken
    /// in this view the instant it is marked.
    pub(crate) fn waits_for(&self) -> HashMap<TxId, HashSet<TxId>> {
        let mut edges: HashMap<TxId, HashSet<TxId>> = HashMap::new();
        for q in self.queues.values() {
            for (i, w) in q.waiting.iter().enumerate() {
                if self.canceled.contains_key(&w.tx) {
                    continue;
                }
                let target = match q.granted_mode(w.tx) {
                    Some(m) => m.combine(w.mode),
                    None => w.mode,
                };
                let e = edges.entry(w.tx).or_default();
                for g in &q.granted {
                    if g.tx != w.tx && !g.mode.compatible(target) {
                        e.insert(g.tx);
                    }
                }
                for earlier in q.waiting.iter().take(i) {
                    if earlier.tx != w.tx
                        && !self.canceled.contains_key(&earlier.tx)
                        && !earlier.mode.compatible(target)
                    {
                        e.insert(earlier.tx);
                    }
                }
            }
        }
        edges
    }

    /// Transactions currently marked canceled on this shard (any kind).
    pub(crate) fn canceled_txs(&self) -> impl Iterator<Item = TxId> + '_ {
        self.canceled.keys().copied()
    }

    /// Mark `tx` a deadlock victim (an existing external cancellation
    /// wins — the transaction is dying either way and `Canceled` is the
    /// stronger verdict for the caller that asked for it).
    pub(crate) fn mark_victim(&mut self, tx: TxId) {
        self.canceled.entry(tx).or_insert(CancelKind::Victim);
    }

    /// Undo a grant `promote` may have handed `tx` on `res` after it was
    /// marked canceled (the mark-vs-promote race): restore the mode held
    /// at enqueue time, or remove the grant entirely for a fresh request,
    /// so a canceled waiter never carries a granted mode out of the
    /// manager.
    fn revert_grant(&mut self, tx: TxId, res: &Resource, already: Option<LockMode>) {
        let Some(q) = self.queues.get_mut(res) else {
            return;
        };
        match already {
            Some(m) => {
                if let Some(r) = q.granted.iter_mut().find(|r| r.tx == tx) {
                    r.mode = m;
                }
            }
            None => {
                q.granted.retain(|r| r.tx != tx);
                if let Some(h) = self.held.get_mut(&tx) {
                    h.remove(res);
                }
            }
        }
    }

    /// Does the waits-for graph contain a cycle through `start`?
    fn in_cycle(&self, start: TxId) -> bool {
        let edges = self.waits_for();
        // DFS from start looking for a path back to start.
        let mut stack: Vec<TxId> = edges.get(&start).into_iter().flatten().copied().collect();
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == start {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = edges.get(&n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    }

    fn remove_waiter(&mut self, tx: TxId, res: &Resource) {
        if let Some(q) = self.queues.get_mut(res) {
            q.waiting.retain(|r| r.tx != tx);
            if q.granted.is_empty() && q.waiting.is_empty() {
                self.queues.remove(res);
            }
        }
    }
}

/// Counters exposed for benchmarks and tests.
#[derive(Debug, Default)]
pub struct LockStats {
    pub grants: AtomicU64,
    pub waits: AtomicU64,
    pub deadlocks: AtomicU64,
    pub timeouts: AtomicU64,
}

/// A blocking, deadlock-detecting Strict 2PL lock manager.
pub struct LockManager {
    state: Mutex<State>,
    cv: Condvar,
    stats: LockStats,
    sink: Option<SinkSlot>,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LockManager {
    pub fn new() -> LockManager {
        LockManager {
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            stats: LockStats::default(),
            sink: None,
        }
    }

    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Install an audit sink that observes every lock event this manager
    /// emits, stamped with `shard`. Must be called before the manager is
    /// shared across threads (hence `&mut self` — no runtime cost when no
    /// sink is installed).
    pub fn set_sink(&mut self, shard: usize, sink: Arc<dyn LockEventSink>) {
        self.sink = Some(SinkSlot { shard, sink });
    }

    #[inline]
    fn emit(&self, mk: impl FnOnce(usize) -> LockEvent) {
        if let Some(slot) = &self.sink {
            slot.sink.on_event(&mk(slot.shard));
        }
    }

    /// Acquire `mode` on `res` for `tx`, blocking up to `timeout`
    /// (`None` = wait forever). Re-acquiring a covered mode is a no-op;
    /// acquiring a stronger mode performs an upgrade.
    pub fn lock(
        &self,
        tx: TxId,
        res: Resource,
        mode: LockMode,
        timeout: Option<Duration>,
    ) -> Result<(), LockError> {
        self.lock_probed(tx, res, mode, timeout, None)
    }

    /// [`Self::lock`] plus an optional probe hook: while blocked, the
    /// waiter periodically fires `probe.run` with this shard's state
    /// mutex **released** (the hook takes every shard's mutex to build a
    /// consistent cross-shard cut — see [`crate::detect`]). The first
    /// probe fires after `probe.grace`, then every `probe.period`.
    pub(crate) fn lock_probed(
        &self,
        tx: TxId,
        res: Resource,
        mode: LockMode,
        timeout: Option<Duration>,
        probe: Option<ProbeHook<'_>>,
    ) -> Result<(), LockError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut st = self.state.lock();
        match st.canceled.get(&tx) {
            Some(CancelKind::External) => return Err(LockError::Canceled),
            Some(CancelKind::Victim) => return Err(LockError::Deadlock),
            None => {}
        }
        let q = st.queues.entry(res.clone()).or_default();
        let already = q.granted_mode(tx);
        let target = match already {
            Some(m) if m.covers(mode) => {
                self.stats.grants.fetch_add(1, Ordering::Relaxed);
                self.emit(|shard| LockEvent::Granted {
                    tx,
                    res,
                    mode: m,
                    shard,
                });
                return Ok(());
            }
            Some(m) => m.combine(mode),
            None => mode,
        };

        // Immediate grant: compatible with grants, and — for fresh requests
        // — nobody already waiting (FIFO fairness). Upgrades may overtake.
        let can_grant =
            q.compatible_with_granted(tx, target) && (already.is_some() || q.waiting.is_empty());
        if can_grant {
            match q.granted.iter_mut().find(|r| r.tx == tx) {
                Some(r) => r.mode = target,
                None => q.granted.push(Request { tx, mode: target }),
            }
            st.held.entry(tx).or_default().insert(res.clone());
            self.stats.grants.fetch_add(1, Ordering::Relaxed);
            self.emit(|shard| LockEvent::Granted {
                tx,
                res,
                mode: target,
                shard,
            });
            return Ok(());
        }

        // Must wait. Upgrades go to the front so they cannot starve behind
        // fresh requests they are incompatible with.
        let req = Request { tx, mode };
        if already.is_some() {
            q.waiting.push_front(req);
        } else {
            q.waiting.push_back(req);
        }
        self.stats.waits.fetch_add(1, Ordering::Relaxed);
        self.emit(|shard| LockEvent::Wait {
            tx,
            res: res.clone(),
            mode,
            shard,
        });

        // Deadlock check with the new edge in place: requester is victim.
        if st.in_cycle(tx) {
            st.remove_waiter(tx, &res);
            self.stats.deadlocks.fetch_add(1, Ordering::Relaxed);
            // Our departure may unblock others.
            st.promote(&res);
            self.cv.notify_all();
            self.emit(|shard| LockEvent::Deadlock {
                tx,
                res: res.clone(),
                mode,
                shard,
            });
            return Err(LockError::Deadlock);
        }

        let wait_start = Instant::now();
        let mut next_probe = probe.as_ref().map(|p| Instant::now() + p.grace);
        loop {
            // 1. Cancellation wins over a racing grant: revert anything
            //    promote handed us after the mark, leave the queue, and
            //    fail with the kind's error — a victim must never carry a
            //    grant out of the cycle the detector is dismantling.
            if let Some(kind) = st.canceled.get(&tx).copied() {
                st.revert_grant(tx, &res, already);
                st.remove_waiter(tx, &res);
                st.promote(&res);
                st.wait_micros.push(wait_start.elapsed().as_micros() as u64);
                self.cv.notify_all();
                return match kind {
                    CancelKind::External => Err(LockError::Canceled),
                    CancelKind::Victim => {
                        self.stats.deadlocks.fetch_add(1, Ordering::Relaxed);
                        self.emit(|shard| LockEvent::Deadlock {
                            tx,
                            res: res.clone(),
                            mode,
                            shard,
                        });
                        Err(LockError::Deadlock)
                    }
                };
            }
            // 2. Granted?
            let won = st
                .queues
                .get(&res)
                .and_then(|q| q.granted_mode(tx).filter(|m| m.covers(mode)));
            if let Some(m) = won {
                st.wait_micros.push(wait_start.elapsed().as_micros() as u64);
                self.stats.grants.fetch_add(1, Ordering::Relaxed);
                self.emit(|shard| LockEvent::Granted {
                    tx,
                    res,
                    mode: m,
                    shard,
                });
                return Ok(());
            }
            // 3. Deadline passed? The grant check above ran under this
            //    same mutex hold, so a requester that actually won the
            //    grant can never reach this branch — the timeout cannot
            //    double-count against a successful acquisition, and no
            //    granted mode is left behind by the departure.
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    st.remove_waiter(tx, &res);
                    st.promote(&res);
                    st.wait_micros.push(wait_start.elapsed().as_micros() as u64);
                    self.cv.notify_all();
                    self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    self.emit(|shard| LockEvent::Timeout {
                        tx,
                        res: res.clone(),
                        mode,
                        shard,
                    });
                    return Err(LockError::Timeout);
                }
            }
            // 4. Probe due? Run it with the state mutex released, then
            //    re-evaluate from the top (the probe may have marked us).
            if let Some(p) = probe.as_ref() {
                let due = next_probe.expect("next_probe set when probing");
                if Instant::now() >= due {
                    drop(st);
                    (p.run)();
                    next_probe = Some(Instant::now() + p.period);
                    st = self.state.lock();
                    continue;
                }
            }
            // 5. Sleep until the earliest of deadline and next probe.
            let wake = match (deadline, next_probe) {
                (Some(d), Some(p)) => Some(d.min(p)),
                (Some(d), None) => Some(d),
                (None, p) => p,
            };
            match wake {
                Some(w) => {
                    let _ = self.cv.wait_until(&mut st, w);
                }
                None => self.cv.wait(&mut st),
            }
        }
    }

    /// Non-blocking acquire.
    pub fn try_lock(&self, tx: TxId, res: Resource, mode: LockMode) -> bool {
        let mut st = self.state.lock();
        if st.canceled.contains_key(&tx) {
            return false;
        }
        let q = st.queues.entry(res.clone()).or_default();
        let target = match q.granted_mode(tx) {
            Some(m) if m.covers(mode) => {
                self.emit(|shard| LockEvent::Granted {
                    tx,
                    res,
                    mode: m,
                    shard,
                });
                return true;
            }
            Some(m) => m.combine(mode),
            None => mode,
        };
        let fresh = q.granted_mode(tx).is_none();
        if q.compatible_with_granted(tx, target) && (!fresh || q.waiting.is_empty()) {
            match q.granted.iter_mut().find(|r| r.tx == tx) {
                Some(r) => r.mode = target,
                None => q.granted.push(Request { tx, mode: target }),
            }
            st.held.entry(tx).or_default().insert(res.clone());
            self.stats.grants.fetch_add(1, Ordering::Relaxed);
            self.emit(|shard| LockEvent::Granted {
                tx,
                res,
                mode: target,
                shard,
            });
            true
        } else {
            false
        }
    }

    /// Release one resource early (used by relaxed isolation levels — this
    /// is exactly the "altering the length of time locks are held" knob §4
    /// mentions). Under full entangled isolation this is never called;
    /// everything is released at commit/abort by [`Self::unlock_all`].
    pub fn release(&self, tx: TxId, res: &Resource) {
        let mut st = self.state.lock();
        if let Some(q) = st.queues.get_mut(res) {
            q.granted.retain(|r| r.tx != tx);
        }
        if let Some(h) = st.held.get_mut(&tx) {
            h.remove(res);
        }
        st.promote(res);
        self.cv.notify_all();
        self.emit(|shard| LockEvent::Released {
            tx,
            res: res.clone(),
            shard,
        });
    }

    /// Strict 2PL release: drop every lock `tx` holds (call at
    /// commit/abort).
    pub fn unlock_all(&self, tx: TxId) {
        let mut st = self.state.lock();
        let held: Vec<Resource> = st.held.remove(&tx).into_iter().flatten().collect();
        for res in &held {
            if let Some(q) = st.queues.get_mut(res) {
                q.granted.retain(|r| r.tx != tx);
                q.waiting.retain(|r| r.tx != tx);
            }
        }
        for res in &held {
            st.promote(res);
        }
        st.canceled.remove(&tx);
        self.cv.notify_all();
        self.emit(|shard| LockEvent::ReleasedAll { tx, shard });
    }

    /// Forget every lock, waiter, and cancellation — the crash-recovery
    /// reset. A restarted engine has no lock table; leaving pre-crash
    /// grants behind would block post-recovery transactions on owners
    /// that no longer exist. Callers must guarantee no thread is waiting
    /// inside [`Self::lock`] (recovery quiesce).
    pub fn reset(&self) {
        let mut st = self.state.lock();
        st.queues.clear();
        st.held.clear();
        st.canceled.clear();
        st.wait_micros.clear();
        self.cv.notify_all();
        self.emit(|shard| LockEvent::Reset { shard });
    }

    /// Completed blocked-wait durations (µs) since creation or the last
    /// [`Self::reset`]: one sample per request that actually slept,
    /// whether it ended in a grant, a timeout, or a cancellation.
    pub fn wait_micros(&self) -> Vec<u64> {
        self.state.lock().wait_micros.clone()
    }

    /// True when no transaction holds or awaits any lock — the quiesce
    /// precondition for a transactionally-consistent checkpoint image.
    pub fn quiescent(&self) -> bool {
        let st = self.state.lock();
        st.queues
            .values()
            .all(|q| q.granted.is_empty() && q.waiting.is_empty())
    }

    /// Cancel a transaction: any in-flight or future waits fail with
    /// [`LockError::Canceled`]. Held locks stay until `unlock_all`.
    pub fn cancel(&self, tx: TxId) {
        let mut st = self.state.lock();
        st.canceled.entry(tx).or_insert(CancelKind::External);
        self.cv.notify_all();
    }

    /// Convict a transaction as a deadlock victim: its in-flight wait
    /// wakes with [`LockError::Deadlock`] (counted in
    /// [`LockStats::deadlocks`] and emitted as [`LockEvent::Deadlock`] by
    /// the waiting thread), and further requests fail the same way until
    /// `unlock_all` clears the mark. The global detector's cancellation
    /// path; an already-external cancellation keeps its `Canceled`
    /// verdict.
    pub fn cancel_victim(&self, tx: TxId) {
        let mut st = self.state.lock();
        st.mark_victim(tx);
        self.cv.notify_all();
    }

    /// Lock this shard's state for a multi-shard consistent cut (the
    /// global detector holds every shard's guard at once; ordinary lock
    /// traffic only ever holds one).
    pub(crate) fn state_guard(&self) -> parking_lot::MutexGuard<'_, State> {
        self.state.lock()
    }

    /// Wake every waiter on this shard (used after victim marking under
    /// [`Self::state_guard`], once the guards are dropped).
    pub(crate) fn notify_waiters(&self) {
        self.cv.notify_all();
    }

    /// Locks currently held by `tx`.
    pub fn held(&self, tx: TxId) -> Vec<(Resource, LockMode)> {
        let st = self.state.lock();
        let mut out: Vec<(Resource, LockMode)> = st
            .held
            .get(&tx)
            .into_iter()
            .flatten()
            .filter_map(|res| {
                st.queues
                    .get(res)
                    .and_then(|q| q.granted_mode(tx))
                    .map(|m| (res.clone(), m))
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Total number of resources with at least one granted or waiting
    /// request (diagnostics).
    pub fn active_resources(&self) -> usize {
        self.state.lock().queues.len()
    }

    /// Snapshot of the waits-for edges (diagnostics/tests).
    pub fn waits_for_edges(&self) -> Vec<(TxId, TxId)> {
        let st = self.state.lock();
        let mut out: Vec<(TxId, TxId)> = st
            .waits_for()
            .into_iter()
            .flat_map(|(w, hs)| hs.into_iter().map(move |h| (w, h)))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::LockMode::*;
    use std::sync::Arc;

    fn t(n: u64) -> TxId {
        TxId(n)
    }

    #[test]
    fn reset_clears_grants_and_quiescence_tracks_them() {
        let lm = LockManager::new();
        assert!(lm.quiescent());
        lm.lock(t(1), Resource::table("a"), X, None).unwrap();
        lm.cancel(t(2));
        assert!(!lm.quiescent());
        lm.reset();
        assert!(lm.quiescent());
        assert!(lm.held(t(1)).is_empty());
        // A new owner can take the lock immediately, and the stale
        // cancellation is gone.
        lm.lock(t(3), Resource::table("a"), X, None).unwrap();
        lm.lock(t(2), Resource::table("b"), S, None).unwrap();
        lm.unlock_all(t(3));
        lm.unlock_all(t(2));
        assert!(lm.quiescent());
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        let r = Resource::table("flights");
        lm.lock(t(1), r.clone(), S, None).unwrap();
        lm.lock(t(2), r.clone(), S, None).unwrap();
        assert_eq!(lm.held(t(1)), vec![(r.clone(), S)]);
        assert_eq!(lm.held(t(2)), vec![(r, S)]);
    }

    #[test]
    fn reacquire_is_noop_and_upgrade_works() {
        let lm = LockManager::new();
        let r = Resource::table("flights");
        lm.lock(t(1), r.clone(), S, None).unwrap();
        lm.lock(t(1), r.clone(), S, None).unwrap();
        lm.lock(t(1), r.clone(), X, None).unwrap();
        assert_eq!(lm.held(t(1)), vec![(r.clone(), X)]);
        // X covers S: re-requesting S is a no-op.
        lm.lock(t(1), r.clone(), S, None).unwrap();
        assert_eq!(lm.held(t(1)), vec![(r, X)]);
    }

    #[test]
    fn exclusive_blocks_and_try_lock_fails() {
        let lm = LockManager::new();
        let r = Resource::table("flights");
        lm.lock(t(1), r.clone(), X, None).unwrap();
        assert!(!lm.try_lock(t(2), r.clone(), S));
        assert_eq!(
            lm.lock(t(2), r.clone(), S, Some(Duration::from_millis(20))),
            Err(LockError::Timeout)
        );
        lm.unlock_all(t(1));
        assert!(lm.try_lock(t(2), r, S));
    }

    #[test]
    fn unlock_all_wakes_waiter() {
        let lm = Arc::new(LockManager::new());
        let r = Resource::table("flights");
        lm.lock(t(1), r.clone(), X, None).unwrap();
        let lm2 = lm.clone();
        let r2 = r.clone();
        let h = std::thread::spawn(move || lm2.lock(t(2), r2, S, Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(30));
        lm.unlock_all(t(1));
        assert_eq!(h.join().unwrap(), Ok(()));
        assert_eq!(lm.held(t(2)), vec![(r, S)]);
    }

    #[test]
    fn deadlock_detected_requester_victim() {
        let lm = Arc::new(LockManager::new());
        let a = Resource::table("a");
        let b = Resource::table("b");
        lm.lock(t(1), a.clone(), X, None).unwrap();
        lm.lock(t(2), b.clone(), X, None).unwrap();
        let lm2 = lm.clone();
        let (a2, b2) = (a.clone(), b.clone());
        // t1 waits for b (held by t2).
        let h = std::thread::spawn(move || lm2.lock(t(1), b2, X, Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(30));
        // t2 requesting a closes the cycle: t2 is the victim.
        let err = lm
            .lock(t(2), a.clone(), X, Some(Duration::from_secs(5)))
            .unwrap_err();
        assert_eq!(err, LockError::Deadlock);
        assert_eq!(lm.stats().deadlocks.load(Ordering::Relaxed), 1);
        // Victim aborts, releasing b; t1 proceeds.
        lm.unlock_all(t(2));
        assert_eq!(h.join().unwrap(), Ok(()));
        let _ = a2;
    }

    #[test]
    fn upgrade_deadlock_detected() {
        // Two transactions holding S both requesting X: classic upgrade
        // deadlock; the second requester must be told.
        let lm = Arc::new(LockManager::new());
        let r = Resource::table("t");
        lm.lock(t(1), r.clone(), S, None).unwrap();
        lm.lock(t(2), r.clone(), S, None).unwrap();
        let lm2 = lm.clone();
        let rr = r.clone();
        let h = std::thread::spawn(move || lm2.lock(t(1), rr, X, Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(30));
        let err = lm
            .lock(t(2), r.clone(), X, Some(Duration::from_secs(5)))
            .unwrap_err();
        assert_eq!(err, LockError::Deadlock);
        lm.unlock_all(t(2));
        assert_eq!(h.join().unwrap(), Ok(()));
    }

    #[test]
    fn cancel_aborts_waiter() {
        let lm = Arc::new(LockManager::new());
        let r = Resource::table("flights");
        lm.lock(t(1), r.clone(), X, None).unwrap();
        let lm2 = lm.clone();
        let r2 = r.clone();
        let h = std::thread::spawn(move || lm2.lock(t(2), r2, S, None));
        std::thread::sleep(Duration::from_millis(30));
        lm.cancel(t(2));
        assert_eq!(h.join().unwrap(), Err(LockError::Canceled));
        // A cancelled tx cannot take new locks until unlock_all clears it.
        assert!(!lm.try_lock(t(2), Resource::table("other"), S));
        lm.unlock_all(t(2));
        assert!(lm.try_lock(t(2), Resource::table("other"), S));
    }

    #[test]
    fn fifo_fairness_blocks_overtaking_reader() {
        // t1 holds X; t2 waits for S; t3 requests S. Under FIFO, t3 must
        // not be granted before t2 (it queues), even though S||S.
        let lm = Arc::new(LockManager::new());
        let r = Resource::table("flights");
        lm.lock(t(1), r.clone(), X, None).unwrap();
        let lm2 = lm.clone();
        let r2 = r.clone();
        let w2 = std::thread::spawn(move || lm2.lock(t(2), r2, S, Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            !lm.try_lock(t(3), r.clone(), S),
            "fresh request must queue behind waiter"
        );
        lm.unlock_all(t(1));
        assert_eq!(w2.join().unwrap(), Ok(()));
        // Now t2 holds S, and t3 can join it.
        assert!(lm.try_lock(t(3), r, S));
    }

    #[test]
    fn intention_locks() {
        let lm = LockManager::new();
        let table = Resource::table("flights");
        let row = Resource::row("flights", 0);
        lm.lock(t(1), table.clone(), IX, None).unwrap();
        lm.lock(t(1), row.clone(), X, None).unwrap();
        // IS is compatible with IX at table level.
        lm.lock(t(2), table.clone(), IS, None).unwrap();
        // But the row itself is blocked.
        assert!(!lm.try_lock(t(2), row.clone(), S));
        // And a full-table S is blocked by the IX.
        assert_eq!(
            lm.lock(t(3), table.clone(), S, Some(Duration::from_millis(20))),
            Err(LockError::Timeout)
        );
        lm.unlock_all(t(1));
        assert!(lm.try_lock(t(2), row, S));
    }

    #[test]
    fn early_release_unblocks() {
        let lm = Arc::new(LockManager::new());
        let r = Resource::table("flights");
        lm.lock(t(1), r.clone(), S, None).unwrap();
        let lm2 = lm.clone();
        let r2 = r.clone();
        let h = std::thread::spawn(move || lm2.lock(t(2), r2, X, Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(30));
        lm.release(t(1), &r);
        assert_eq!(h.join().unwrap(), Ok(()));
    }

    #[test]
    fn held_and_resource_accounting() {
        let lm = LockManager::new();
        lm.lock(t(1), Resource::table("a"), S, None).unwrap();
        lm.lock(t(1), Resource::table("b"), X, None).unwrap();
        assert_eq!(lm.held(t(1)).len(), 2);
        assert_eq!(lm.active_resources(), 2);
        lm.unlock_all(t(1));
        assert_eq!(lm.held(t(1)).len(), 0);
        assert_eq!(lm.active_resources(), 0);
    }

    #[test]
    fn waits_for_edges_snapshot() {
        let lm = Arc::new(LockManager::new());
        let r = Resource::table("flights");
        lm.lock(t(1), r.clone(), X, None).unwrap();
        let lm2 = lm.clone();
        let r2 = r.clone();
        let h = std::thread::spawn(move || lm2.lock(t(2), r2, S, Some(Duration::from_secs(2))));
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(lm.waits_for_edges(), vec![(t(2), t(1))]);
        lm.unlock_all(t(1));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn concurrent_stress_no_lost_grants() {
        // 8 threads × 50 increments under an X table lock must serialize.
        let lm = Arc::new(LockManager::new());
        let counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let lm = lm.clone();
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                for j in 0..50u64 {
                    let tx = TxId(1 + i * 1000 + j);
                    lm.lock(tx, Resource::table("c"), X, None).unwrap();
                    {
                        let mut c = counter.lock();
                        let v = *c;
                        std::hint::black_box(&v);
                        *c = v + 1;
                    }
                    lm.unlock_all(tx);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 400);
    }

    #[test]
    fn timeout_promotion_race_no_double_count_or_leak() {
        // Hammer the window where a waiter's deadline expires at the same
        // instant the holder releases. Whichever way each round lands,
        // the outcome must be atomic: a won grant is really held (and not
        // also counted as a timeout), a timeout leaves no granted mode
        // behind, and the timeouts counter equals the number of
        // Err(Timeout) returns exactly.
        let lm = Arc::new(LockManager::new());
        let r = Resource::table("hot");
        let mut timeouts_returned = 0u64;
        for round in 0..40u64 {
            let holder = TxId(10_000 + round);
            let waiter = TxId(20_000 + round);
            lm.lock(holder, r.clone(), X, None).unwrap();
            let lm2 = lm.clone();
            let r2 = r.clone();
            let h =
                std::thread::spawn(move || lm2.lock(waiter, r2, X, Some(Duration::from_millis(2))));
            // Release right around the waiter's deadline.
            std::thread::sleep(Duration::from_millis(2));
            lm.unlock_all(holder);
            match h.join().unwrap() {
                Ok(()) => {
                    assert_eq!(
                        lm.held(waiter),
                        vec![(r.clone(), X)],
                        "round {round}: a won grant must be held"
                    );
                }
                Err(LockError::Timeout) => {
                    timeouts_returned += 1;
                    assert!(
                        lm.held(waiter).is_empty(),
                        "round {round}: a timed-out waiter must not leak a grant"
                    );
                }
                Err(e) => panic!("round {round}: unexpected {e:?}"),
            }
            lm.unlock_all(waiter);
            assert!(lm.quiescent(), "round {round} left lock state behind");
        }
        assert_eq!(
            lm.stats().timeouts.load(Ordering::Relaxed),
            timeouts_returned,
            "timeouts counter must match Err(Timeout) returns exactly"
        );
        assert_eq!(lm.stats().deadlocks.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn canceled_waiter_never_receives_promotion_grant() {
        // t1 holds X; t2 waits for X; t3 queues behind t2 for S. Cancel
        // t2, then release t1: promotion must skip the canceled waiter
        // (no leaked grant) and hand the lock to t3 even though the
        // canceled t2 sat ahead of it in FIFO order.
        let lm = Arc::new(LockManager::new());
        let r = Resource::table("hot");
        lm.lock(t(1), r.clone(), X, None).unwrap();
        let (lm2, r2) = (lm.clone(), r.clone());
        let w2 = std::thread::spawn(move || lm2.lock(t(2), r2, X, None));
        std::thread::sleep(Duration::from_millis(30));
        let (lm3, r3) = (lm.clone(), r.clone());
        let w3 = std::thread::spawn(move || lm3.lock(t(3), r3, S, Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(30));
        lm.cancel(t(2));
        assert_eq!(w2.join().unwrap(), Err(LockError::Canceled));
        assert!(lm.held(t(2)).is_empty(), "canceled waiter holds nothing");
        lm.unlock_all(t(1));
        assert_eq!(w3.join().unwrap(), Ok(()));
        assert_eq!(lm.held(t(3)), vec![(r, S)]);
        lm.unlock_all(t(2));
        lm.unlock_all(t(3));
        assert!(lm.quiescent());
    }

    #[test]
    fn victim_cancellation_surfaces_deadlock_not_timeout() {
        // A waiter convicted by the (external) victim path wakes with
        // Deadlock, counts one broken cycle, and stays convicted until
        // unlock_all clears the mark.
        let lm = Arc::new(LockManager::new());
        let r = Resource::table("hot");
        lm.lock(t(1), r.clone(), X, None).unwrap();
        let (lm2, r2) = (lm.clone(), r.clone());
        let w2 = std::thread::spawn(move || lm2.lock(t(2), r2, S, Some(Duration::from_secs(5))));
        std::thread::sleep(Duration::from_millis(30));
        lm.cancel_victim(t(2));
        assert_eq!(w2.join().unwrap(), Err(LockError::Deadlock));
        assert_eq!(lm.stats().deadlocks.load(Ordering::Relaxed), 1);
        assert_eq!(lm.stats().timeouts.load(Ordering::Relaxed), 0);
        // Still convicted: further requests fail fast with Deadlock.
        assert_eq!(
            lm.lock(t(2), Resource::table("other"), S, None),
            Err(LockError::Deadlock)
        );
        lm.unlock_all(t(2));
        lm.unlock_all(t(1));
        assert!(lm.try_lock(t(2), Resource::table("other"), S));
        lm.unlock_all(t(2));
        assert!(lm.quiescent());
    }

    #[test]
    fn upgrade_waiter_canceled_keeps_prior_mode_only() {
        // t1 and t2 hold S; t2 waits to upgrade to X; cancel t2. Its S
        // must survive (held locks stay until unlock_all) but the X must
        // never materialize — and t1's own upgrade can then proceed.
        let lm = Arc::new(LockManager::new());
        let r = Resource::table("hot");
        lm.lock(t(1), r.clone(), S, None).unwrap();
        lm.lock(t(2), r.clone(), S, None).unwrap();
        let (lm2, r2) = (lm.clone(), r.clone());
        let w2 = std::thread::spawn(move || lm2.lock(t(2), r2, X, None));
        std::thread::sleep(Duration::from_millis(30));
        lm.cancel(t(2));
        assert_eq!(w2.join().unwrap(), Err(LockError::Canceled));
        assert_eq!(lm.held(t(2)), vec![(r.clone(), S)]);
        // t2's abandoned upgrade no longer blocks t1's.
        lm.unlock_all(t(2));
        lm.lock(t(1), r.clone(), X, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(lm.held(t(1)), vec![(r, X)]);
        lm.unlock_all(t(1));
        assert!(lm.quiescent());
    }
}
