//! Lock modes and the multigranularity compatibility matrix.

use std::fmt;

/// Multigranularity lock modes. The engine locks tables (for grounding
/// reads and scans — the mechanism §3.3.3 of the paper names for preventing
/// unrepeatable quasi-reads) and rows (for point reads/writes), with
/// intention modes at the table level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockMode {
    /// Intention shared.
    IS,
    /// Intention exclusive.
    IX,
    /// Shared.
    S,
    /// Shared + intention exclusive.
    SIX,
    /// Exclusive.
    X,
}

impl LockMode {
    /// The classic compatibility matrix (Gray & Reuter).
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (IS, X) | (X, IS) => false,
            (IS, _) | (_, IS) => true,
            (IX, IX) => true,
            (IX, _) | (_, IX) => false,
            (S, S) => true,
            (S, _) | (_, S) => false,
            (SIX, _) | (_, SIX) => false,
            (X, X) => false,
        }
    }

    /// Least upper bound of two modes — the mode a transaction holds after
    /// an upgrade request (e.g. S + IX = SIX, anything + X = X).
    pub fn combine(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self == other {
            return self;
        }
        match (self, other) {
            (X, _) | (_, X) => X,
            (SIX, _) | (_, SIX) => SIX,
            (S, IX) | (IX, S) => SIX,
            (S, IS) | (IS, S) => S,
            (IX, IS) | (IS, IX) => IX,
            _ => unreachable!("equal modes handled above"),
        }
    }

    /// Whether holding `self` already grants the privileges of `want`.
    pub fn covers(self, want: LockMode) -> bool {
        self.combine(want) == self
    }

    /// True for modes that permit writing the resource.
    pub fn is_exclusive(self) -> bool {
        matches!(self, LockMode::X)
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LockMode::IS => "IS",
            LockMode::IX => "IX",
            LockMode::S => "S",
            LockMode::SIX => "SIX",
            LockMode::X => "X",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::LockMode::*;
    use super::*;

    const ALL: [LockMode; 5] = [IS, IX, S, SIX, X];

    #[test]
    fn compatibility_matrix_matches_gray_reuter() {
        // Rows/cols in order IS, IX, S, SIX, X.
        let expected = [
            [true, true, true, true, false],
            [true, true, false, false, false],
            [true, false, true, false, false],
            [true, false, false, false, false],
            [false, false, false, false, false],
        ];
        for (i, a) in ALL.iter().enumerate() {
            for (j, b) in ALL.iter().enumerate() {
                assert_eq!(a.compatible(*b), expected[i][j], "{a} vs {b}");
            }
        }
    }

    #[test]
    fn compatibility_is_symmetric() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.compatible(b), b.compatible(a));
            }
        }
    }

    #[test]
    fn combine_is_lub() {
        assert_eq!(S.combine(IX), SIX);
        assert_eq!(IX.combine(S), SIX);
        assert_eq!(IS.combine(S), S);
        assert_eq!(IS.combine(IX), IX);
        assert_eq!(S.combine(X), X);
        assert_eq!(SIX.combine(IS), SIX);
        for a in ALL {
            assert_eq!(a.combine(a), a, "idempotent");
            assert_eq!(a.combine(X), X, "X absorbs");
        }
    }

    #[test]
    fn combine_commutative_and_covers() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.combine(b), b.combine(a));
                assert!(a.combine(b).covers(a));
                assert!(a.combine(b).covers(b));
            }
        }
        assert!(X.covers(S));
        assert!(!S.covers(X));
        assert!(SIX.covers(S));
        assert!(SIX.covers(IX));
        assert!(!SIX.covers(X));
    }

    #[test]
    fn exclusivity() {
        assert!(X.is_exclusive());
        for m in [IS, IX, S, SIX] {
            assert!(!m.is_exclusive());
        }
    }
}
