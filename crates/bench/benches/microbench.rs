//! Component microbenchmarks: entangled-query evaluation (grounding +
//! coordinating-set search), lock manager throughput, WAL append/recovery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use youtopia_entangle::{from_ast, ground, solve, SolveInput, SolverConfig};
use youtopia_lock::{LockManager, LockMode, Resource, TxId};
use youtopia_sql::{parse_statement, Statement, VarEnv};
use youtopia_storage::{Database, Schema, Value, ValueType};
use youtopia_wal::{recover, LogRecord, Wal};

fn flights_db(n: i64) -> Database {
    let mut db = Database::new();
    db.create_table(
        "Flights",
        Schema::of(&[("fno", ValueType::Int), ("dest", ValueType::Str)]),
    )
    .unwrap();
    for i in 0..n {
        db.insert("Flights", vec![Value::Int(i), Value::str("LA")])
            .unwrap();
    }
    db
}

fn bench_entangle(c: &mut Criterion) {
    let mut group = c.benchmark_group("entangle-eval");
    for n in [10i64, 100, 1000] {
        let db = flights_db(n);
        let q = |me: &str, other: &str| {
            let sql = format!(
                "SELECT '{me}', fno INTO ANSWER R \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
                 AND ('{other}', fno) IN ANSWER R CHOOSE 1"
            );
            let Statement::Entangled(eq) = parse_statement(&sql).unwrap() else {
                panic!()
            };
            from_ast(&eq, &VarEnv::new()).unwrap()
        };
        let (a, b) = (q("Mickey", "Minnie"), q("Minnie", "Mickey"));
        group.bench_with_input(BenchmarkId::new("pair", n), &n, |bch, _| {
            bch.iter(|| {
                let ga = ground(&db, &a, &VarEnv::new()).unwrap();
                let gb = ground(&db, &b, &VarEnv::new()).unwrap();
                let inputs = vec![
                    SolveInput {
                        ir: &a,
                        grounding: &ga,
                    },
                    SolveInput {
                        ir: &b,
                        grounding: &gb,
                    },
                ];
                solve(&inputs, &SolverConfig::default())
            });
        });
    }
    group.finish();
}

fn bench_locks(c: &mut Criterion) {
    c.bench_function("lock-acquire-release", |b| {
        let lm = LockManager::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let tx = TxId(i);
            lm.lock(tx, Resource::table("flights"), LockMode::S, None)
                .unwrap();
            lm.lock(tx, Resource::row("reserve", i), LockMode::X, None)
                .unwrap();
            lm.unlock_all(tx);
        });
    });
}

fn bench_wal(c: &mut Criterion) {
    c.bench_function("wal-append-sync", |b| {
        let wal = Wal::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            wal.append(&LogRecord::Insert {
                tx: i,
                table: "Reserve".into(),
                row: i,
                values: vec![Value::Int(i as i64), Value::Int(122)],
            });
            wal.append_sync(&LogRecord::Commit { tx: i, ts: 0 });
        });
    });
    c.bench_function("wal-recovery-1k-txns", |b| {
        let wal = Wal::new();
        wal.append(&LogRecord::CreateTable {
            name: "Reserve".into(),
            schema: Schema::of(&[("uid", ValueType::Int), ("fid", ValueType::Int)]),
        });
        for i in 0..1000u64 {
            wal.append(&LogRecord::Insert {
                tx: i,
                table: "Reserve".into(),
                row: i,
                values: vec![Value::Int(i as i64), Value::Int(122)],
            });
            wal.append(&LogRecord::Commit { tx: i, ts: 0 });
        }
        wal.sync();
        let records = wal.durable_records().unwrap();
        b.iter(|| recover(&records).unwrap());
    });
}

criterion_group!(benches, bench_entangle, bench_locks, bench_wal);
criterion_main!(benches);
