//! Ablation benches (DESIGN.md Ab1–Ab4): group commit, solver fast path,
//! lock granularity, run trigger policy.

use criterion::{criterion_group, criterion_main, Criterion};
use youtopia_bench::{run_ablated, run_fig6b, Ablation, Scale};
use youtopia_workload::Family;

fn bench_ablations(c: &mut Criterion) {
    let mut scale = Scale::quick();
    scale.txns = 60;
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("baseline-entangled", |b| {
        b.iter(|| run_ablated(&scale, None, Family::Entangled, 50))
    });
    group.bench_function("ab2-group-commit-off", |b| {
        b.iter(|| {
            run_ablated(
                &scale,
                Some(Ablation::GroupCommitOff),
                Family::Entangled,
                50,
            )
        })
    });
    group.bench_function("ab3-general-solver", |b| {
        b.iter(|| {
            run_ablated(
                &scale,
                Some(Ablation::SolverGeneralOnly),
                Family::Entangled,
                50,
            )
        })
    });
    group.bench_function("ab4-table-locks-nosocial", |b| {
        b.iter(|| {
            run_ablated(
                &scale,
                Some(Ablation::TableGranularity),
                Family::NoSocial,
                50,
            )
        })
    });
    group.bench_function("ab4-row-locks-nosocial", |b| {
        b.iter(|| run_ablated(&scale, None, Family::NoSocial, 50))
    });
    // Ab1: run trigger — f=1 vs f=50 at fixed pending load.
    group.bench_function("ab1-trigger-f1", |b| {
        b.iter(|| run_fig6b(&scale, 10, 1, 50))
    });
    group.bench_function("ab1-trigger-f50", |b| {
        b.iter(|| run_fig6b(&scale, 10, 50, 50))
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
