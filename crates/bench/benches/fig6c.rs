//! Criterion bench for Figure 6(c): spoke-hub and cyclic coordination at
//! set sizes k ∈ {2, 6, 10}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use youtopia_bench::{run_fig6c, Scale};
use youtopia_workload::Structure;

fn bench_fig6c(c: &mut Criterion) {
    let scale = Scale::quick();
    let mut group = c.benchmark_group("fig6c");
    group.sample_size(10);
    for structure in [Structure::SpokeHub, Structure::Cyclic] {
        for k in [2usize, 6, 10] {
            let id = BenchmarkId::new(structure.label(), k);
            group.bench_with_input(id, &k, |b, &k| {
                b.iter(|| run_fig6c(&scale, structure, k, 4, 10, 50));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6c);
criterion_main!(benches);
