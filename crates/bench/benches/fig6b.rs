//! Criterion bench for Figure 6(b): pending transactions p ∈ {10, 100} at
//! run frequencies f ∈ {1, 50}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use youtopia_bench::{run_fig6b, Scale};

fn bench_fig6b(c: &mut Criterion) {
    let mut scale = Scale::quick();
    scale.txns = 60;
    let mut group = c.benchmark_group("fig6b");
    group.sample_size(10);
    for f in [1usize, 50] {
        for p in [10usize, 100] {
            let id = BenchmarkId::new(format!("f{f}"), p);
            group.bench_with_input(id, &(p, f), |b, &(p, f)| {
                b.iter(|| run_fig6b(&scale, p, f, 50));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6b);
criterion_main!(benches);
