//! Criterion bench for Figure 6(a): the six workloads at two connection
//! counts. Use `cargo run -p youtopia-bench --release --bin repro fig6a`
//! for the full connection sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use youtopia_bench::{run_fig6a, Scale};
use youtopia_workload::{Family, WorkloadMode};

fn bench_fig6a(c: &mut Criterion) {
    let mut scale = Scale::quick();
    scale.txns = 60;
    let mut group = c.benchmark_group("fig6a");
    group.sample_size(10);
    for family in Family::ALL {
        for (mode, suffix) in [
            (WorkloadMode::Transactional, "T"),
            (WorkloadMode::QueryOnly, "Q"),
        ] {
            for connections in [10usize, 100] {
                let id = BenchmarkId::new(format!("{}-{}", family.label(), suffix), connections);
                group.bench_with_input(id, &connections, |b, &conns| {
                    b.iter(|| run_fig6a(&scale, family, mode, conns));
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6a);
criterion_main!(benches);
