//! Regenerate the paper's evaluation figures (§5.2, Figure 6a/b/c) plus the
//! ablations as text tables.
//!
//! ```text
//! repro [fig6a|fig6b|fig6c|ablations|scaling|durability|recovery|readscale|pointmix|rangemix|sharding|hotcycle|auditgraph|all] [--full]
//! ```
//!
//! `scaling` measures committed-txns/sec on the transactional Fig. 6(a)
//! mixes at connections ∈ {1, 2, 4, 8} and writes the machine-readable
//! baseline to `BENCH_scaling.json` (tracked as a CI artifact).
//!
//! `durability` measures the group-commit WAL pipeline on the same mixes:
//! committed-txns/sec and syncs-per-commit with the sync batching on and
//! off, written to `BENCH_durability.json` (also a CI artifact).
//!
//! `recovery` measures crash-restart cost: durable log length and
//! recovery wall time vs. transaction count, with checkpointing (and WAL
//! truncation) on vs off, written to `BENCH_recovery.json` (also a CI
//! artifact). With checkpoints both stay O(delta since the last image);
//! without them both grow O(history).
//!
//! `readscale` measures the multi-version snapshot read path on a
//! read-mostly mix (80% pure-SELECT transactions): committed-txns/sec
//! with snapshot reads on vs the S-lock-reads ablation, written to
//! `BENCH_readscale.json` (also a CI artifact). The acceptance target is
//! snapshot-on ≥ 1.5× snapshot-off at 8 connections.
//!
//! `pointmix` measures the named secondary indexes on a point-access mix
//! (80% single-row UPDATE+confirm writers): committed-txns/sec and
//! rows-scanned-per-statement with the indexes installed vs the no-index
//! scan ablation, written to `BENCH_index.json` (also a CI artifact). The
//! acceptance target is indexed ≥ 3× no-index at 8 connections with
//! rows-scanned per point statement dropping from O(table) to O(1).
//!
//! `rangemix` measures the btree range plans on a range-heavy mix (70%
//! date-window dashboards): committed-txns/sec and access-path counters
//! with the btree indexes installed vs the forced-scan ablation, written
//! to `BENCH_range.json` (also a CI artifact). The acceptance target is
//! indexed ≥ 3× forced-scan at 8 connections, with snapshot windows
//! served by live-index probes (zero per-snapshot index rebuilds).
//!
//! `sharding` measures the per-shard commit pipelines on the shard-local
//! vs 50%-cross-shard mixes at shards ∈ {1, 2, 4} and connections
//! ∈ {1, 2, 4, 8, 16}, written to `BENCH_sharding.json` (also a CI
//! artifact). The acceptance target is 4-shard shard-local throughput
//! ≥ 1.5× single-shard at 8 connections (parity at 1 connection), with
//! the cross-shard two-phase commit tax measured alongside.
//!
//! `hotcycle` measures global cross-shard deadlock detection on a
//! deadlock-prone hot-row mix (opposite-order two-shard pairs) at 4
//! shards and 8 connections: the edge-chasing probe overlay vs the
//! timeout-only ablation, written to `BENCH_deadlock.json` (also a CI
//! artifact). The acceptance targets are zero timeouts on the detect arm
//! (every cycle dies by explicit victim conviction) and detect
//! committed-txns/sec ≥ 2× the ablation.
//!
//! `--full` uses a larger transaction count per point (slower, smoother
//! curves). Output mirrors the paper's series: x-value then one column per
//! curve, in seconds.

use std::io::Write;
use youtopia_bench::{
    durability_json, hotcycle_json, pointmix_json, pointmix_speedup, rangemix_json,
    rangemix_speedup, readscale_json, readscale_speedup, recovery_json, run_ablated,
    run_audit_graph, run_durability_series, run_fig6a, run_fig6b, run_fig6c, run_hotcycle,
    run_pointmix_series, run_rangemix_series, run_readscale_series, run_recovery_series,
    run_scaling_series, run_sharding_series, scaling_json, scaling_speedup, sharding_cross_tax,
    sharding_json, sharding_local_speedup, Ablation, Scale, HOTCYCLE_CONNECTIONS, HOTCYCLE_SHARDS,
    POINTMIX_WRITE_PCT, RANGEMIX_WRITE_PCT, READSCALE_WRITE_PCT, SHARDING_CROSS_PCT,
};
use youtopia_workload::{Family, Structure, WorkloadMode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let scale = if full { Scale::full() } else { Scale::quick() };

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match what.as_str() {
        "fig6a" => fig6a(&mut out, &scale),
        "fig6b" => fig6b(&mut out, &scale),
        "fig6c" => fig6c(&mut out, &scale),
        "ablations" => ablations(&mut out, &scale),
        "scaling" => scaling(&mut out, &scale),
        "durability" => durability(&mut out, &scale),
        "recovery" => recovery(&mut out, &scale),
        "readscale" => readscale(&mut out, &scale),
        "pointmix" => pointmix(&mut out, &scale),
        "rangemix" => rangemix(&mut out, &scale),
        "sharding" => sharding(&mut out, &scale),
        "hotcycle" => hotcycle(&mut out, &scale),
        "auditgraph" => auditgraph(&mut out, &scale),
        "all" => {
            fig6a(&mut out, &scale);
            fig6b(&mut out, &scale);
            fig6c(&mut out, &scale);
            ablations(&mut out, &scale);
            scaling(&mut out, &scale);
            durability(&mut out, &scale);
            recovery(&mut out, &scale);
            readscale(&mut out, &scale);
            pointmix(&mut out, &scale);
            rangemix(&mut out, &scale);
            sharding(&mut out, &scale);
            hotcycle(&mut out, &scale);
            auditgraph(&mut out, &scale);
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; expected fig6a|fig6b|fig6c|ablations|scaling|durability|recovery|readscale|pointmix|rangemix|sharding|hotcycle|auditgraph|all"
            );
            std::process::exit(2);
        }
    }
}

/// Figure 6(a): six workloads × connection counts.
fn fig6a(out: &mut impl Write, scale: &Scale) {
    writeln!(out, "# Figure 6(a) — Concurrent transactions").unwrap();
    writeln!(
        out,
        "# {} transactions per point; time in seconds (paper: 10000 txns, 20-160s band)",
        scale.txns
    )
    .unwrap();
    let connections = [10usize, 25, 50, 75, 100];
    let series: Vec<(Family, WorkloadMode)> = vec![
        (Family::NoSocial, WorkloadMode::Transactional),
        (Family::Social, WorkloadMode::Transactional),
        (Family::Entangled, WorkloadMode::Transactional),
        (Family::NoSocial, WorkloadMode::QueryOnly),
        (Family::Social, WorkloadMode::QueryOnly),
        (Family::Entangled, WorkloadMode::QueryOnly),
    ];
    write!(out, "{:>12}", "connections").unwrap();
    for (f, m) in &series {
        let suffix = if *m == WorkloadMode::Transactional {
            "T"
        } else {
            "Q"
        };
        write!(out, " {:>12}", format!("{}-{}", f.label(), suffix)).unwrap();
    }
    writeln!(out).unwrap();
    for c in connections {
        write!(out, "{c:>12}").unwrap();
        for (f, m) in &series {
            let p = run_fig6a(scale, *f, *m, c);
            write!(out, " {:>12.3}", p.seconds).unwrap();
            if p.failed > scale.txns / 10 {
                eprintln!("warning: {}-{:?} c={c}: {} failed", f.label(), m, p.failed);
            }
        }
        writeln!(out).unwrap();
        out.flush().unwrap();
    }
    writeln!(out).unwrap();
}

/// Figure 6(b): pending transactions × run frequency.
fn fig6b(out: &mut impl Write, scale: &Scale) {
    writeln!(out, "# Figure 6(b) — Pending transactions").unwrap();
    writeln!(
        out,
        "# {} paired transactions; p pending; f arrivals per run; seconds",
        scale.txns
    )
    .unwrap();
    let ps = [0usize, 10, 25, 50, 75, 100];
    let fs = [1usize, 10, 50];
    write!(out, "{:>8}", "p").unwrap();
    for f in fs {
        write!(out, " {:>10}", format!("f={f}")).unwrap();
    }
    writeln!(out).unwrap();
    for p in ps {
        write!(out, "{p:>8}").unwrap();
        for f in fs {
            let point = run_fig6b(scale, p, f, 50);
            write!(out, " {:>10.3}", point.seconds).unwrap();
        }
        writeln!(out).unwrap();
        out.flush().unwrap();
    }
    writeln!(out).unwrap();
}

/// Figure 6(c): coordinating-set size × structure × run frequency.
fn fig6c(out: &mut impl Write, scale: &Scale) {
    writeln!(out, "# Figure 6(c) — Entangled queries per transaction").unwrap();
    let groups = (scale.txns / 20).max(4);
    writeln!(out, "# {groups} coordination groups per point; seconds").unwrap();
    let ks = [2usize, 3, 4, 5, 6, 7, 8, 9, 10];
    let series = [
        (Structure::SpokeHub, 10usize),
        (Structure::SpokeHub, 50),
        (Structure::Cyclic, 10),
        (Structure::Cyclic, 50),
    ];
    write!(out, "{:>6}", "k").unwrap();
    for (s, f) in &series {
        write!(out, " {:>18}", format!("{}, f={f}", s.label())).unwrap();
    }
    writeln!(out).unwrap();
    for k in ks {
        write!(out, "{k:>6}").unwrap();
        for (s, f) in &series {
            let p = run_fig6c(scale, *s, k, groups, *f, 50);
            write!(out, " {:>18.3}", p.seconds).unwrap();
        }
        writeln!(out).unwrap();
        out.flush().unwrap();
    }
    writeln!(out).unwrap();
}

/// Recovery: crash-restart cost (durable log length + recovery wall time)
/// vs. transaction count, checkpointing on vs off, plus the
/// `BENCH_recovery.json` CI baseline.
fn recovery(out: &mut impl Write, scale: &Scale) {
    writeln!(out, "# Recovery — checkpointed restart vs full replay").unwrap();
    writeln!(
        out,
        "# crash after N transactions; columns: retained log KiB | recovery us | records replayed"
    )
    .unwrap();
    let series = run_recovery_series(scale);
    write!(out, "{:>8}", "txns").unwrap();
    for s in &series {
        write!(out, " {:>30}", s.label).unwrap();
    }
    writeln!(out).unwrap();
    let points_per_series = series.first().map_or(0, |s| s.points.len());
    for i in 0..points_per_series {
        write!(out, "{:>8}", series[0].points[i].txns).unwrap();
        for s in &series {
            let p = &s.points[i];
            write!(
                out,
                " {:>30}",
                format!(
                    "{:.1} KiB | {:.0} us | {}",
                    p.retained_log_bytes as f64 / 1024.0,
                    p.recovery_micros,
                    p.replayed_records
                )
            )
            .unwrap();
        }
        writeln!(out).unwrap();
        out.flush().unwrap();
    }
    for s in &series {
        let (first, last) = (
            s.points.first().expect("non-empty series"),
            s.points.last().expect("non-empty series"),
        );
        writeln!(
            out,
            "# {}: retained log {:.1} -> {:.1} KiB, recovery {:.0} -> {:.0} us across {}x history ({} checkpoints at max)",
            s.label,
            first.retained_log_bytes as f64 / 1024.0,
            last.retained_log_bytes as f64 / 1024.0,
            first.recovery_micros,
            last.recovery_micros,
            last.txns / first.txns.max(1),
            last.checkpoints
        )
        .unwrap();
    }
    let json = recovery_json(scale, &series);
    std::fs::write("BENCH_recovery.json", &json).expect("write BENCH_recovery.json");
    writeln!(out, "# baseline written to BENCH_recovery.json").unwrap();
    writeln!(out).unwrap();
}

/// Readscale: the read-mostly mix with the multi-version snapshot read
/// path on vs the S-lock-reads ablation, plus the `BENCH_readscale.json`
/// CI baseline. Acceptance: on ≥ 1.5× off at 8 connections.
fn readscale(out: &mut impl Write, scale: &Scale) {
    writeln!(out, "# Readscale — snapshot reads vs S-lock reads").unwrap();
    writeln!(
        out,
        "# {} transactions per point, {}% writers; columns: txns/sec (failed)",
        scale.txns, READSCALE_WRITE_PCT
    )
    .unwrap();
    let series = run_readscale_series(scale);
    write!(out, "{:>12}", "connections").unwrap();
    for s in &series {
        write!(out, " {:>24}", s.label).unwrap();
    }
    writeln!(out).unwrap();
    let points_per_series = series.first().map_or(0, |s| s.points.len());
    for i in 0..points_per_series {
        write!(out, "{:>12}", series[0].points[i].connections).unwrap();
        for s in &series {
            let p = &s.points[i];
            write!(
                out,
                " {:>24}",
                format!("{:.1} ({})", p.txns_per_sec, p.failed)
            )
            .unwrap();
        }
        writeln!(out).unwrap();
        out.flush().unwrap();
    }
    writeln!(
        out,
        "# snapshot-on / snapshot-off at max connections: {:.2}x (acceptance floor 1.5x)",
        readscale_speedup(&series)
    )
    .unwrap();
    let json = readscale_json(scale, &series);
    std::fs::write("BENCH_readscale.json", &json).expect("write BENCH_readscale.json");
    writeln!(out, "# baseline written to BENCH_readscale.json").unwrap();
    writeln!(out).unwrap();
}

/// Pointmix: the point-access mix with the named secondary indexes
/// installed vs the no-index scan ablation, plus the `BENCH_index.json`
/// CI baseline. Acceptance: indexed ≥ 3× no-index at 8 connections with
/// rows-scanned per point statement O(1) instead of O(table).
fn pointmix(out: &mut impl Write, scale: &Scale) {
    writeln!(out, "# Pointmix — index plans vs heap scans").unwrap();
    writeln!(
        out,
        "# {} transactions per point, {}% point writers; columns: txns/sec (rows/stmt)",
        scale.txns, POINTMIX_WRITE_PCT
    )
    .unwrap();
    let series = run_pointmix_series(scale);
    write!(out, "{:>12}", "connections").unwrap();
    for s in &series {
        write!(out, " {:>24}", s.label).unwrap();
    }
    writeln!(out).unwrap();
    let points_per_series = series.first().map_or(0, |s| s.points.len());
    for i in 0..points_per_series {
        write!(out, "{:>12}", series[0].points[i].scaling.connections).unwrap();
        for s in &series {
            let p = &s.points[i];
            write!(
                out,
                " {:>24}",
                format!(
                    "{:.1} ({:.1})",
                    p.scaling.txns_per_sec, p.rows_per_statement
                )
            )
            .unwrap();
        }
        writeln!(out).unwrap();
        out.flush().unwrap();
    }
    for s in &series {
        let top = s.points.last().expect("non-empty series");
        writeln!(
            out,
            "# {}: {:.3} syncs/commit; {} rows scanned, {} index lookups at {} connections",
            s.label,
            top.scaling.syncs_per_commit,
            top.rows_scanned,
            top.index_lookups,
            top.scaling.connections
        )
        .unwrap();
    }
    writeln!(
        out,
        "# indexed / no-index at max connections: {:.2}x (acceptance floor 3x)",
        pointmix_speedup(&series)
    )
    .unwrap();
    let json = pointmix_json(scale, &series);
    std::fs::write("BENCH_index.json", &json).expect("write BENCH_index.json");
    writeln!(out, "# baseline written to BENCH_index.json").unwrap();
    writeln!(out).unwrap();
}

/// Rangemix: the range-heavy date-window mix with the btree indexes
/// installed vs the forced-scan ablation, plus the `BENCH_range.json` CI
/// baseline. Acceptance: indexed ≥ 3× forced-scan at 8 connections with
/// snapshot windows served by live-index probes (zero rebuilds).
fn rangemix(out: &mut impl Write, scale: &Scale) {
    writeln!(out, "# Rangemix — btree range plans vs forced scans").unwrap();
    writeln!(
        out,
        "# {} transactions per point, {}% writers; columns: txns/sec (rows/stmt)",
        scale.txns, RANGEMIX_WRITE_PCT
    )
    .unwrap();
    let series = run_rangemix_series(scale);
    write!(out, "{:>12}", "connections").unwrap();
    for s in &series {
        write!(out, " {:>24}", s.label).unwrap();
    }
    writeln!(out).unwrap();
    let points_per_series = series.first().map_or(0, |s| s.points.len());
    for i in 0..points_per_series {
        write!(out, "{:>12}", series[0].points[i].scaling.connections).unwrap();
        for s in &series {
            let p = &s.points[i];
            write!(
                out,
                " {:>24}",
                format!(
                    "{:.1} ({:.1})",
                    p.scaling.txns_per_sec, p.rows_per_statement
                )
            )
            .unwrap();
        }
        writeln!(out).unwrap();
        out.flush().unwrap();
    }
    for s in &series {
        let top = s.points.last().expect("non-empty series");
        writeln!(
            out,
            "# {}: {:.3} syncs/commit; {} rows scanned, {} index lookups, {} index rebuilds avoided at {} connections",
            s.label,
            top.scaling.syncs_per_commit,
            top.rows_scanned,
            top.index_lookups,
            top.index_rebuilds_avoided,
            top.scaling.connections
        )
        .unwrap();
    }
    writeln!(
        out,
        "# indexed / forced-scan at max connections: {:.2}x (acceptance floor 3x)",
        rangemix_speedup(&series)
    )
    .unwrap();
    let json = rangemix_json(scale, &series);
    std::fs::write("BENCH_range.json", &json).expect("write BENCH_range.json");
    writeln!(out, "# baseline written to BENCH_range.json").unwrap();
    writeln!(out).unwrap();
}

/// Sharding: per-shard commit pipelines on the shard-local vs 50%-cross
/// mixes at shards ∈ {1, 2, 4}, plus the `BENCH_sharding.json` CI
/// baseline. Acceptance: 4-shard local ≥ 1.5× 1-shard at 8 connections
/// (parity at 1 connection); the cross series shows the two-phase tax.
fn sharding(out: &mut impl Write, scale: &Scale) {
    writeln!(out, "# Sharding — per-shard commit pipelines").unwrap();
    writeln!(
        out,
        "# {} transactions per point; device sync latency {}us; cross mix {}% two-shard txns; columns: txns/sec (failed)",
        scale.txns,
        scale.cost.per_commit.as_micros(),
        SHARDING_CROSS_PCT
    )
    .unwrap();
    let series = run_sharding_series(scale);
    write!(out, "{:>12}", "connections").unwrap();
    for s in &series {
        write!(out, " {:>16}", s.label).unwrap();
    }
    writeln!(out).unwrap();
    let points_per_series = series.first().map_or(0, |s| s.points.len());
    for i in 0..points_per_series {
        write!(out, "{:>12}", series[0].points[i].scaling.connections).unwrap();
        for s in &series {
            let p = &s.points[i];
            write!(
                out,
                " {:>16}",
                format!("{:.1} ({})", p.scaling.txns_per_sec, p.scaling.failed)
            )
            .unwrap();
        }
        writeln!(out).unwrap();
        out.flush().unwrap();
    }
    for s in &series {
        let top = s.points.last().expect("non-empty series");
        let syncs: Vec<String> = top.shard_syncs.iter().map(|n| n.to_string()).collect();
        writeln!(
            out,
            "# {}: {:.1} txns/sec at {} connections; {:.3} syncs/commit; {} cross-shard commits, {} prepares; {} deadlocks ({} victims, {} probes), {} timeouts; per-shard syncs [{}]",
            s.label,
            top.scaling.txns_per_sec,
            top.scaling.connections,
            top.scaling.syncs_per_commit,
            top.cross_shard_commits,
            top.cross_shard_prepares,
            top.deadlocks,
            top.deadlock_victims,
            top.detection_probes,
            top.timeouts,
            syncs.join(", ")
        )
        .unwrap();
    }
    writeln!(
        out,
        "# local 4-shard / 1-shard at 8 connections: {:.2}x (acceptance floor 1.5x)",
        sharding_local_speedup(&series)
    )
    .unwrap();
    writeln!(
        out,
        "# cross-shard tax (local / {}% cross at 4 shards, 8 connections): {:.2}x",
        SHARDING_CROSS_PCT,
        sharding_cross_tax(&series)
    )
    .unwrap();
    let json = sharding_json(scale, &series);
    std::fs::write("BENCH_sharding.json", &json).expect("write BENCH_sharding.json");
    writeln!(out, "# baseline written to BENCH_sharding.json").unwrap();
    writeln!(out).unwrap();
}

/// Hotcycle: global cross-shard deadlock detection vs the timeout-only
/// ablation on the deadlock-prone hot-row mix, plus the
/// `BENCH_deadlock.json` CI baseline. Acceptance: zero timeouts on the
/// detect arm and detect throughput ≥ 2× the ablation.
fn hotcycle(out: &mut impl Write, scale: &Scale) {
    writeln!(out, "# Hotcycle — global deadlock detection vs timeouts").unwrap();
    writeln!(
        out,
        "# opposite-order hot-row pairs at {HOTCYCLE_SHARDS} shards, {HOTCYCLE_CONNECTIONS} connections; columns per arm"
    )
    .unwrap();
    let report = run_hotcycle(scale);
    writeln!(
        out,
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "arm",
        "txns/sec",
        "committed",
        "deadlocks",
        "victims",
        "probes",
        "timeouts",
        "p50 block",
        "p99 block"
    )
    .unwrap();
    for a in [&report.detect, &report.timeout] {
        writeln!(
            out,
            "{:>10} {:>10.1} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
            a.label,
            a.txns_per_sec,
            a.committed,
            a.deadlocks,
            a.deadlock_victims,
            a.detection_probes,
            a.timeouts,
            format!("{}us", a.p50_block_us),
            format!("{}us", a.p99_block_us)
        )
        .unwrap();
    }
    writeln!(
        out,
        "# detect / timeout-only throughput: {:.2}x (acceptance floor 2x); detect-arm timeouts: {} (acceptance: 0)",
        report.detect_speedup(),
        report.detect.timeouts
    )
    .unwrap();
    let json = hotcycle_json(scale, &report);
    std::fs::write("BENCH_deadlock.json", &json).expect("write BENCH_deadlock.json");
    writeln!(out, "# baseline written to BENCH_deadlock.json").unwrap();
    writeln!(out).unwrap();
}

/// Auditgraph: run the contended cross-shard mix under the protocol
/// auditor and serialize its lock-order graph + cycle report to
/// `AUDIT_lock_graph.json` (a CI artifact). Needs an audited build
/// (`--features audit` in release; debug builds always audit) —
/// unaudited builds write an empty stub and say so.
fn auditgraph(out: &mut impl Write, scale: &Scale) {
    writeln!(
        out,
        "# Auditgraph — lock-order graph of the cross-shard mix"
    )
    .unwrap();
    let report = run_audit_graph(scale);
    writeln!(
        out,
        "# {} committed; {} audit events; {} deadlocks, {} timeouts",
        report.committed, report.audit_events, report.deadlocks, report.timeouts
    )
    .unwrap();
    let json = match report.graph_json {
        Some(json) => json,
        None => {
            writeln!(
                out,
                "# UNAUDITED build — rerun with `--features audit` for a real graph"
            )
            .unwrap();
            "{\"edges\": [], \"cycles\": [], \"unaudited\": true}\n".to_string()
        }
    };
    std::fs::write("AUDIT_lock_graph.json", &json).expect("write AUDIT_lock_graph.json");
    writeln!(out, "# graph written to AUDIT_lock_graph.json").unwrap();
    writeln!(out).unwrap();
}

/// Ablations Ab1–Ab4 (DESIGN.md).
fn ablations(out: &mut impl Write, scale: &Scale) {
    writeln!(
        out,
        "# Ablations (Entangled-T unless noted; seconds; committed/total)"
    )
    .unwrap();
    let total = scale.txns;
    let rows: Vec<(&str, Option<Ablation>, Family)> = vec![
        ("baseline (Entangled-T)", None, Family::Entangled),
        (
            "group commit OFF (Ab2)",
            Some(Ablation::GroupCommitOff),
            Family::Entangled,
        ),
        (
            "general solver only (Ab3)",
            Some(Ablation::SolverGeneralOnly),
            Family::Entangled,
        ),
        (
            "table locks, NoSocial (Ab4)",
            Some(Ablation::TableGranularity),
            Family::NoSocial,
        ),
        ("row locks, NoSocial (Ab4 ref)", None, Family::NoSocial),
    ];
    for (label, ab, fam) in rows {
        let p = run_ablated(scale, ab, fam, 50);
        writeln!(
            out,
            "{label:>32}: {:>8.3}s  {}/{}",
            p.seconds, p.committed, total
        )
        .unwrap();
        out.flush().unwrap();
    }
    // The structural negative result: table locks + entangled pairs.
    let mut tiny = *scale;
    tiny.txns = 4;
    let p = run_ablated(
        &tiny,
        Some(Ablation::TableGranularity),
        Family::Entangled,
        8,
    );
    writeln!(
        out,
        "{:>32}: {:>8.3}s  {}/4  (livelock by design — see EXPERIMENTS.md)",
        "table locks, Entangled (Ab4)", p.seconds, p.committed
    )
    .unwrap();
    writeln!(out).unwrap();
}

/// Scaling: committed-txns/sec vs connections on the transactional mixes,
/// plus the `BENCH_scaling.json` baseline for the CI perf trajectory.
fn scaling(out: &mut impl Write, scale: &Scale) {
    writeln!(out, "# Scaling — committed txns/sec vs connections").unwrap();
    writeln!(
        out,
        "# {} transactions per point; per-statement cost {}us",
        scale.txns,
        scale.cost.per_statement.as_micros()
    )
    .unwrap();
    let series = run_scaling_series(scale);
    write!(out, "{:>12}", "connections").unwrap();
    for (label, _) in &series {
        write!(out, " {label:>12}").unwrap();
    }
    writeln!(out).unwrap();
    let points_per_series = series.first().map_or(0, |(_, p)| p.len());
    for i in 0..points_per_series {
        write!(out, "{:>12}", series[0].1[i].connections).unwrap();
        for (_, points) in &series {
            write!(out, " {:>12.1}", points[i].txns_per_sec).unwrap();
        }
        writeln!(out).unwrap();
    }
    for (label, points) in &series {
        let top = points.last().expect("non-empty series");
        writeln!(
            out,
            "# {label}: speedup {:.2}x at max connections; {:.3} syncs/commit there (group commit amortizes durability)",
            scaling_speedup(points),
            top.syncs_per_commit
        )
        .unwrap();
    }
    let json = scaling_json(scale, &series);
    std::fs::write("BENCH_scaling.json", &json).expect("write BENCH_scaling.json");
    writeln!(out, "# baseline written to BENCH_scaling.json").unwrap();
    writeln!(out).unwrap();
}

/// Durability: the group-commit WAL pipeline vs sync-per-commit, measured
/// as committed-txns/sec and syncs-per-commit across connection counts,
/// plus the `BENCH_durability.json` CI baseline.
fn durability(out: &mut impl Write, scale: &Scale) {
    writeln!(out, "# Durability — group-commit WAL pipeline").unwrap();
    writeln!(
        out,
        "# {} transactions per point; device sync latency {}us; columns: txns/sec (syncs/commit)",
        scale.txns,
        scale.cost.per_commit.as_micros()
    )
    .unwrap();
    let series = run_durability_series(scale);
    write!(out, "{:>12}", "connections").unwrap();
    for s in &series {
        write!(out, " {:>22}", s.label).unwrap();
    }
    writeln!(out).unwrap();
    let points_per_series = series.first().map_or(0, |s| s.points.len());
    for i in 0..points_per_series {
        write!(out, "{:>12}", series[0].points[i].connections).unwrap();
        for s in &series {
            let p = &s.points[i];
            write!(
                out,
                " {:>22}",
                format!("{:.1} ({:.3})", p.txns_per_sec, p.syncs_per_commit)
            )
            .unwrap();
        }
        writeln!(out).unwrap();
        out.flush().unwrap();
    }
    for s in &series {
        let top = s.points.last().expect("non-empty series");
        writeln!(
            out,
            "# {}: {:.1} txns/sec, {:.3} syncs/commit at {} connections",
            s.label, top.txns_per_sec, top.syncs_per_commit, top.connections
        )
        .unwrap();
    }
    let json = durability_json(scale, &series);
    std::fs::write("BENCH_durability.json", &json).expect("write BENCH_durability.json");
    writeln!(out, "# baseline written to BENCH_durability.json").unwrap();
    writeln!(out).unwrap();
}
