//! Shared experiment drivers for the benchmark harness: one function per
//! figure of the paper's evaluation (§5.2), used by both the Criterion
//! benches and the `repro` binary.
//!
//! Absolute numbers will not match the paper's 2011 testbed (MySQL on a
//! Core i7); the drivers are built so the *shapes* match — see
//! EXPERIMENTS.md for the paper-vs-measured record.

use entangled_txn::{
    CheckpointPolicy, CostModel, DeadlockPolicy, EngineConfig, IsolationMode, LockGranularity,
    RunTrigger, Scheduler, SchedulerConfig,
};
use std::time::{Duration, Instant};
use youtopia_entangle::SolverConfig;
use youtopia_workload::{
    engine_config, generate, generate_hot_cycle, generate_point_mix, generate_range_mix,
    generate_read_mix, generate_shard_mix, generate_structured, pending_plan, point_index_script,
    point_seed_script, range_index_script, range_seed_script, scheduler_for, shard_index_script,
    Family, SocialGraph, Structure, TravelData, TravelParams, WorkloadMode,
};

/// Experiment scale, trading fidelity for wall-clock time.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Transactions per Figure 6(a)/(b) data point (paper: 10 000).
    pub txns: usize,
    pub users: usize,
    pub cities: usize,
    pub flights: usize,
    /// Simulated per-statement connection/IO latency.
    pub cost: CostModel,
    pub seed: u64,
}

impl Scale {
    /// Quick scale for CI / `cargo bench` (seconds per point). The cost
    /// model approximates per-statement connection/IO latency; it must
    /// dominate scheduling overhead for the Figure 6(a) inverse-scaling
    /// shape to emerge, as it did on the paper's MySQL setup.
    pub fn quick() -> Scale {
        Scale {
            txns: 600,
            users: 300,
            cities: 8,
            flights: 300,
            cost: CostModel {
                per_statement: Duration::from_micros(500),
                per_entangled_eval: Duration::from_micros(500),
                per_commit: Duration::from_millis(1),
            },
            seed: 11,
        }
    }

    /// Fuller scale for the `repro --full` run.
    pub fn full() -> Scale {
        Scale {
            txns: 3_000,
            ..Scale::quick()
        }
    }

    pub fn data(&self) -> TravelData {
        let params = TravelParams {
            users: self.users,
            cities: self.cities,
            flights: self.flights,
            seed: self.seed,
        };
        let mut d = TravelData::generate(params, SocialGraph::slashdot_like(self.users, self.seed));
        d.align_pair_hometowns(self.seed);
        d
    }
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct Point {
    pub label: String,
    pub x: f64,
    pub seconds: f64,
    pub committed: usize,
    pub failed: usize,
    /// Device syncs the workload paid (excluding the setup bootstrap
    /// sync); `syncs / committed` is the durability amortization figure.
    pub syncs: u64,
}

/// Figure 6(a): execute `scale.txns` transactions of one workload at a
/// given connection count; returns elapsed seconds.
pub fn run_fig6a(scale: &Scale, family: Family, mode: WorkloadMode, connections: usize) -> Point {
    run_fig6a_configured(scale, family, mode, connections, true)
}

/// [`run_fig6a`] with the WAL group-commit pipeline togglable (off =
/// every commit pays its own serialized device sync).
pub fn run_fig6a_configured(
    scale: &Scale,
    family: Family,
    mode: WorkloadMode,
    connections: usize,
    wal_group_commit: bool,
) -> Point {
    let data = scale.data();
    let mut cfg = engine_config(mode, scale.cost, false);
    cfg.wal_group_commit = wal_group_commit;
    let engine = data.build_engine(cfg);
    let mut sched = scheduler_for(engine, connections);
    let programs = generate(family, &data, scale.txns, scale.seed);
    let n = programs.len();
    let start = Instant::now();
    for p in programs {
        sched.submit(p);
    }
    let stats = sched.drain();
    let seconds = start.elapsed().as_secs_f64();
    let suffix = match mode {
        WorkloadMode::Transactional => "T",
        WorkloadMode::QueryOnly => "Q",
    };
    Point {
        label: format!("{}-{}", family.label(), suffix),
        x: connections as f64,
        seconds,
        committed: stats.committed,
        // Everything not committed counts as failed, including
        // submissions the drain gave up on without a final status.
        failed: n - stats.committed,
        syncs: stats.syncs,
    }
}

/// Figure 6(b): `p` permanently-pending transactions cycle through every
/// run while paired transactions arrive `f` per run; measures the time for
/// all paired transactions to commit.
pub fn run_fig6b(scale: &Scale, p: usize, f: usize, connections: usize) -> Point {
    let data = scale.data();
    let engine = data.build_engine(engine_config(
        WorkloadMode::Transactional,
        scale.cost,
        false,
    ));
    let mut sched = Scheduler::new(
        engine,
        SchedulerConfig {
            connections,
            trigger: RunTrigger::Arrivals(f.max(1)),
            max_attempts: u32::MAX,
            checkpoint: CheckpointPolicy::DISABLED,
        },
    );
    let plan = pending_plan(&data, scale.txns, p, scale.seed);
    let paired = plan.paired.len();
    let start = Instant::now();
    for prog in plan.pending {
        sched.submit(prog);
    }
    for prog in plan.paired {
        sched.submit(prog);
    }
    // Finish whatever the arrival trigger has not flushed.
    let mut guard = 0;
    while sched.stats().committed < paired && guard < paired + 16 {
        sched.run_once();
        guard += 1;
    }
    let seconds = start.elapsed().as_secs_f64();
    let stats = sched.stats().clone();
    Point {
        label: format!("f={f}"),
        x: p as f64,
        seconds,
        committed: stats.committed,
        failed: stats.failed,
        syncs: stats.syncs,
    }
}

/// Figure 6(c): coordination groups of size `k` with the given structure;
/// arrivals trigger runs every `f` submissions.
pub fn run_fig6c(
    scale: &Scale,
    structure: Structure,
    k: usize,
    groups: usize,
    f: usize,
    connections: usize,
) -> Point {
    let data = scale.data();
    let engine = data.build_engine(engine_config(
        WorkloadMode::Transactional,
        scale.cost,
        false,
    ));
    let mut sched = Scheduler::new(
        engine,
        SchedulerConfig {
            connections,
            trigger: RunTrigger::Arrivals(f.max(1)),
            max_attempts: u32::MAX,
            checkpoint: CheckpointPolicy::DISABLED,
        },
    );
    let programs = generate_structured(structure, &data, groups, k, Duration::from_secs(120));
    let total = programs.len();
    let start = Instant::now();
    for p in programs {
        sched.submit(p);
    }
    let mut guard = 0;
    while sched.stats().committed < total && guard < total * 4 + 16 {
        sched.run_once();
        guard += 1;
    }
    let seconds = start.elapsed().as_secs_f64();
    let stats = sched.stats().clone();
    Point {
        label: format!("{}, f={f}", structure.label()),
        x: k as f64,
        seconds,
        committed: stats.committed,
        failed: stats.failed,
        syncs: stats.syncs,
    }
}

/// Connection counts measured by the `scaling` driver.
pub const SCALING_CONNECTIONS: [usize; 4] = [1, 2, 4, 8];

/// One measured point of the `scaling` driver: committed-transactions
/// throughput at a connection count.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    pub connections: usize,
    pub seconds: f64,
    pub committed: usize,
    pub failed: usize,
    pub txns_per_sec: f64,
    /// Device syncs per committed transaction (< 1 = group commit is
    /// amortizing durability across transactions).
    pub syncs_per_commit: f64,
}

/// Throughput (committed txns/sec) of one Figure 6(a) mix at a connection
/// count. Requires a **non-zero** [`CostModel`]: with free statements the
/// scheduler overhead dominates and connection scaling is meaningless —
/// the whole point is that per-statement latency overlaps across
/// connections now that storage has no global latch.
pub fn run_scaling(
    scale: &Scale,
    family: Family,
    mode: WorkloadMode,
    connections: usize,
) -> ScalingPoint {
    assert!(
        !scale.cost.per_statement.is_zero(),
        "the scaling driver needs a non-zero CostModel"
    );
    scaling_point(run_fig6a(scale, family, mode, connections), connections)
}

fn scaling_point(p: Point, connections: usize) -> ScalingPoint {
    ScalingPoint {
        connections,
        seconds: p.seconds,
        committed: p.committed,
        failed: p.failed,
        txns_per_sec: if p.seconds > 0.0 {
            p.committed as f64 / p.seconds
        } else {
            0.0
        },
        syncs_per_commit: if p.committed > 0 {
            p.syncs as f64 / p.committed as f64
        } else {
            0.0
        },
    }
}

/// Measure the transactional Figure 6(a) mixes over
/// [`SCALING_CONNECTIONS`]; returns `(series label, points)` pairs.
pub fn run_scaling_series(scale: &Scale) -> Vec<(String, Vec<ScalingPoint>)> {
    Family::ALL
        .iter()
        .map(|family| {
            let points = SCALING_CONNECTIONS
                .iter()
                .map(|&c| run_scaling(scale, *family, WorkloadMode::Transactional, c))
                .collect();
            (format!("{}-T", family.label()), points)
        })
        .collect()
}

/// Speedup of the highest-connection point over the single-connection one.
pub fn scaling_speedup(points: &[ScalingPoint]) -> f64 {
    match (points.first(), points.last()) {
        (Some(base), Some(top)) if base.txns_per_sec > 0.0 => top.txns_per_sec / base.txns_per_sec,
        _ => 0.0,
    }
}

/// Serialize one series body (per-series extras + speedup + points) for
/// the hand-rolled JSON baselines — the serde shim has no serializer, and
/// both `BENCH_scaling.json` and `BENCH_durability.json` share this shape.
fn series_json(out: &mut String, extra_fields: &str, points: &[ScalingPoint], last: bool) {
    out.push_str(&format!(
        "    {{\n{extra_fields}      \"speedup_max_over_1\": {:.3},\n      \"points\": [\n",
        scaling_speedup(points)
    ));
    for (pi, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"connections\": {}, \"seconds\": {:.6}, \"committed\": {}, \"failed\": {}, \"txns_per_sec\": {:.3}, \"syncs_per_commit\": {:.4}}}{}\n",
            p.connections,
            p.seconds,
            p.committed,
            p.failed,
            p.txns_per_sec,
            p.syncs_per_commit,
            if pi + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!("      ]\n    }}{}\n", if last { "" } else { "," }));
}

/// Serialize scaling series as the `BENCH_scaling.json` baseline tracked
/// as a CI artifact.
pub fn scaling_json(scale: &Scale, series: &[(String, Vec<ScalingPoint>)]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"scaling\",\n");
    out.push_str(&format!("  \"txns_per_point\": {},\n", scale.txns));
    out.push_str(&format!(
        "  \"cost_per_statement_us\": {},\n  \"series\": [\n",
        scale.cost.per_statement.as_micros()
    ));
    for (si, (label, points)) in series.iter().enumerate() {
        let extra = format!("      \"label\": \"{label}\",\n");
        series_json(&mut out, &extra, points, si + 1 == series.len());
    }
    out.push_str("  ]\n}\n");
    out
}

/// One `durability` driver series: a Figure 6(a) transactional mix with
/// the WAL group-commit pipeline on or off.
#[derive(Debug, Clone)]
pub struct DurabilitySeries {
    pub label: String,
    pub family: Family,
    pub group_commit: bool,
    pub points: Vec<ScalingPoint>,
}

/// Measure the durability pipeline: committed-txns/sec and
/// syncs-per-commit over [`SCALING_CONNECTIONS`], with and without the
/// group-commit sync batching, on the transactional Figure 6(a) mixes.
/// With group commit ON, concurrent commits share a leader's sync, so
/// syncs-per-commit drops below 1 as connections rise; OFF reproduces the
/// pre-pipeline cost — one serialized device sync per commit *group*
/// (1.0 for classical mixes, 0.5 for entangled pairs).
pub fn run_durability_series(scale: &Scale) -> Vec<DurabilitySeries> {
    assert!(
        !scale.cost.per_commit.is_zero(),
        "the durability driver needs a non-zero sync latency (cost.per_commit)"
    );
    let mut out = Vec::new();
    for group_commit in [true, false] {
        for family in [Family::NoSocial, Family::Entangled] {
            let points = SCALING_CONNECTIONS
                .iter()
                .map(|&c| {
                    let p = run_fig6a_configured(
                        scale,
                        family,
                        WorkloadMode::Transactional,
                        c,
                        group_commit,
                    );
                    scaling_point(p, c)
                })
                .collect();
            out.push(DurabilitySeries {
                label: format!(
                    "{}-T gc={}",
                    family.label(),
                    if group_commit { "on" } else { "off" }
                ),
                family,
                group_commit,
                points,
            });
        }
    }
    out
}

/// Serialize durability series as the `BENCH_durability.json` baseline
/// tracked as a CI artifact (same shape as [`scaling_json`] plus the
/// machine-readable family/group-commit keys).
pub fn durability_json(scale: &Scale, series: &[DurabilitySeries]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"durability\",\n");
    out.push_str(&format!("  \"txns_per_point\": {},\n", scale.txns));
    out.push_str(&format!(
        "  \"sync_latency_us\": {},\n  \"series\": [\n",
        scale.cost.per_commit.as_micros()
    ));
    for (si, s) in series.iter().enumerate() {
        let extra = format!(
            "      \"label\": \"{}\",\n      \"family\": \"{}\",\n      \"group_commit\": {},\n",
            s.label,
            s.family.label(),
            s.group_commit
        );
        series_json(&mut out, &extra, &s.points, si + 1 == series.len());
    }
    out.push_str("  ]\n}\n");
    out
}

/// Percentage of writers in the `readscale` read-mostly mix.
pub const READSCALE_WRITE_PCT: u32 = 20;

/// One `readscale` driver series: the read-mostly mix with the
/// multi-version snapshot read path on, or the S-lock-reads ablation
/// (`EngineConfig.snapshot_reads = false` — readers queue behind writers'
/// IX/X locks exactly as before this optimization).
#[derive(Debug, Clone)]
pub struct ReadscaleSeries {
    pub label: String,
    pub snapshot_reads: bool,
    pub points: Vec<ScalingPoint>,
}

/// Measure one `readscale` point: committed-txns/sec of the read-mostly
/// mix ([`READSCALE_WRITE_PCT`]% booking writers, the rest pure-read
/// dashboard transactions) at a connection count, with the snapshot read
/// path on or off.
///
/// The lock timeout is shortened so that, in the ablation, readers that
/// time out behind a writer churn into retries instead of stalling a
/// whole run on the 250 ms default — the fairer (faster) baseline.
pub fn run_readscale(scale: &Scale, connections: usize, snapshot_reads: bool) -> ScalingPoint {
    assert!(
        !scale.cost.per_statement.is_zero(),
        "the readscale driver needs a non-zero CostModel"
    );
    let data = scale.data();
    let mut cfg = engine_config(WorkloadMode::Transactional, scale.cost, false);
    cfg.snapshot_reads = snapshot_reads;
    cfg.lock_timeout = Duration::from_millis(3);
    let engine = data.build_engine(cfg);
    let mut sched = scheduler_for(engine, connections);
    let programs = generate_read_mix(&data, scale.txns, READSCALE_WRITE_PCT, scale.seed);
    let n = programs.len();
    let start = Instant::now();
    for p in programs {
        sched.submit(p);
    }
    let stats = sched.drain();
    let seconds = start.elapsed().as_secs_f64();
    scaling_point(
        Point {
            label: format!(
                "readmix snapshot={}",
                if snapshot_reads { "on" } else { "off" }
            ),
            x: connections as f64,
            seconds,
            committed: stats.committed,
            failed: n - stats.committed,
            syncs: stats.syncs,
        },
        connections,
    )
}

/// The `readscale` experiment: the read-mostly mix over
/// [`SCALING_CONNECTIONS`], snapshot reads on vs off. The acceptance
/// target is on ≥ 1.5× off (committed txns/sec) at 8 connections: with
/// S-lock reads every reader's table-S on `Reserve` collides with the
/// writers' IX locks, while snapshot readers never touch the lock
/// manager.
pub fn run_readscale_series(scale: &Scale) -> Vec<ReadscaleSeries> {
    [true, false]
        .iter()
        .map(|&snapshot_reads| ReadscaleSeries {
            label: format!(
                "readmix snapshot={}",
                if snapshot_reads { "on" } else { "off" }
            ),
            snapshot_reads,
            points: SCALING_CONNECTIONS
                .iter()
                .map(|&c| run_readscale(scale, c, snapshot_reads))
                .collect(),
        })
        .collect()
}

/// Throughput ratio of the snapshot-on series over the ablation at the
/// highest connection count (the acceptance figure).
pub fn readscale_speedup(series: &[ReadscaleSeries]) -> f64 {
    let at_max = |snapshot: bool| {
        series
            .iter()
            .find(|s| s.snapshot_reads == snapshot)
            .and_then(|s| s.points.last())
            .map_or(0.0, |p| p.txns_per_sec)
    };
    let (on, off) = (at_max(true), at_max(false));
    if off > 0.0 {
        on / off
    } else {
        0.0
    }
}

/// Serialize readscale series as the `BENCH_readscale.json` baseline
/// tracked as a CI artifact (same shape as [`scaling_json`] plus the
/// snapshot-reads key).
pub fn readscale_json(scale: &Scale, series: &[ReadscaleSeries]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"readscale\",\n");
    out.push_str(&format!("  \"txns_per_point\": {},\n", scale.txns));
    out.push_str(&format!("  \"write_pct\": {READSCALE_WRITE_PCT},\n"));
    out.push_str(&format!(
        "  \"snapshot_on_over_off_at_max\": {:.3},\n  \"series\": [\n",
        readscale_speedup(series)
    ));
    for (si, s) in series.iter().enumerate() {
        let extra = format!(
            "      \"label\": \"{}\",\n      \"snapshot_reads\": {},\n",
            s.label, s.snapshot_reads
        );
        series_json(&mut out, &extra, &s.points, si + 1 == series.len());
    }
    out.push_str("  ]\n}\n");
    out
}

/// Percentage of point writers in the `pointmix` mix: write-heavy, so
/// the locked access paths (UPDATE target resolution and the in-txn
/// confirm SELECT) dominate what the index is supposed to accelerate.
pub const POINTMIX_WRITE_PCT: u32 = 80;

/// Point statements per `pointmix` program (reader: two point SELECTs;
/// writer: point UPDATE + confirm point SELECT) — the denominator of the
/// rows-scanned-per-statement figure.
pub const POINTMIX_STATEMENTS_PER_TXN: usize = 2;

/// One measured point of the `pointmix` driver: [`ScalingPoint`] plus the
/// access-path counters the secondary indexes exist to change.
#[derive(Debug, Clone)]
pub struct PointmixPoint {
    pub scaling: ScalingPoint,
    /// Base rows materialized as scan/probe candidates across the run.
    pub rows_scanned: u64,
    /// Index probes served (named-index point plans + eval probes).
    pub index_lookups: u64,
    /// `rows_scanned` per committed point statement: O(1) with the index,
    /// O(table) without (retries inflate it slightly; the orders of
    /// magnitude are what matter).
    pub rows_per_statement: f64,
}

/// One `pointmix` driver series: the point-access mix with the named
/// secondary indexes installed, or the no-index ablation (same data, same
/// programs, scan plans only).
#[derive(Debug, Clone)]
pub struct PointmixSeries {
    pub label: String,
    pub indexed: bool,
    pub points: Vec<PointmixPoint>,
}

/// Measure one `pointmix` point: committed-txns/sec and rows-scanned of
/// the point-access mix at a connection count, with or without the named
/// secondary indexes of [`point_index_script`].
///
/// Without the index every point UPDATE resolves its targets under the
/// table-S + IX write-scan protocol, so concurrent writers serialize on
/// the table *and* pay O(table) per statement; with it they take
/// table-IX + key-X + one row-X and overlap freely. The lock timeout is
/// shortened as in `readscale` so the ablation's S→IX upgrade standoffs
/// churn into retries instead of stalling runs.
pub fn run_pointmix(scale: &Scale, connections: usize, indexed: bool) -> PointmixPoint {
    assert!(
        !scale.cost.per_statement.is_zero(),
        "the pointmix driver needs a non-zero CostModel"
    );
    let data = scale.data();
    let mut cfg = engine_config(WorkloadMode::Transactional, scale.cost, false);
    cfg.lock_timeout = Duration::from_millis(3);
    let engine = data.build_engine(cfg);
    engine
        .setup(&point_seed_script(&data))
        .expect("valid seed script");
    if indexed {
        engine.setup(point_index_script()).expect("valid index DDL");
    }
    let mut sched = scheduler_for(engine, connections);
    let programs = generate_point_mix(&data, scale.txns, POINTMIX_WRITE_PCT, scale.seed);
    let n = programs.len();
    let start = Instant::now();
    for p in programs {
        sched.submit(p);
    }
    let stats = sched.drain();
    let seconds = start.elapsed().as_secs_f64();
    let scaling = scaling_point(
        Point {
            label: format!("pointmix index={}", if indexed { "on" } else { "off" }),
            x: connections as f64,
            seconds,
            committed: stats.committed,
            failed: n - stats.committed,
            syncs: stats.syncs,
        },
        connections,
    );
    let statements = (scaling.committed * POINTMIX_STATEMENTS_PER_TXN).max(1);
    PointmixPoint {
        rows_scanned: stats.rows_scanned,
        index_lookups: stats.index_lookups,
        rows_per_statement: stats.rows_scanned as f64 / statements as f64,
        scaling,
    }
}

/// The `pointmix` experiment: the point-access mix over
/// [`SCALING_CONNECTIONS`], indexed vs the no-index ablation. The
/// acceptance target is indexed ≥ 3× no-index (committed txns/sec) at 8
/// connections, with `rows_per_statement` dropping from O(table) to O(1).
pub fn run_pointmix_series(scale: &Scale) -> Vec<PointmixSeries> {
    [true, false]
        .iter()
        .map(|&indexed| PointmixSeries {
            label: format!("pointmix index={}", if indexed { "on" } else { "off" }),
            indexed,
            points: SCALING_CONNECTIONS
                .iter()
                .map(|&c| run_pointmix(scale, c, indexed))
                .collect(),
        })
        .collect()
}

/// Throughput ratio of the indexed series over the no-index ablation at
/// the highest connection count (the acceptance figure).
pub fn pointmix_speedup(series: &[PointmixSeries]) -> f64 {
    let at_max = |indexed: bool| {
        series
            .iter()
            .find(|s| s.indexed == indexed)
            .and_then(|s| s.points.last())
            .map_or(0.0, |p| p.scaling.txns_per_sec)
    };
    let (on, off) = (at_max(true), at_max(false));
    if off > 0.0 {
        on / off
    } else {
        0.0
    }
}

/// Serialize pointmix series as the `BENCH_index.json` baseline tracked
/// as a CI artifact (the [`scaling_json`] shape plus the per-point
/// access-path counters).
pub fn pointmix_json(scale: &Scale, series: &[PointmixSeries]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"pointmix\",\n");
    out.push_str(&format!("  \"txns_per_point\": {},\n", scale.txns));
    out.push_str(&format!("  \"write_pct\": {POINTMIX_WRITE_PCT},\n"));
    out.push_str(&format!(
        "  \"indexed_over_noindex_at_max\": {:.3},\n  \"series\": [\n",
        pointmix_speedup(series)
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"label\": \"{}\",\n      \"indexed\": {},\n      \"speedup_max_over_1\": {:.3},\n      \"points\": [\n",
            s.label,
            s.indexed,
            scaling_speedup(&s.points.iter().map(|p| p.scaling.clone()).collect::<Vec<_>>())
        ));
        for (pi, p) in s.points.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"connections\": {}, \"seconds\": {:.6}, \"committed\": {}, \"failed\": {}, \"txns_per_sec\": {:.3}, \"rows_scanned\": {}, \"index_lookups\": {}, \"rows_per_statement\": {:.3}}}{}\n",
                p.scaling.connections,
                p.scaling.seconds,
                p.scaling.committed,
                p.scaling.failed,
                p.scaling.txns_per_sec,
                p.rows_scanned,
                p.index_lookups,
                p.rows_per_statement,
                if pi + 1 < s.points.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "      ]\n    }}{}\n",
            if si + 1 < series.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Percentage of writers in the `rangemix` mix. Write-heavy, like
/// `pointmix`: every booker opens with a **locked** range read, so with
/// the btree installed concurrent bookers hold next-key locks over
/// mostly-disjoint date intervals and overlap, while the forced-scan
/// ablation serializes them behind table-S → IX upgrade standoffs. The
/// remaining 30% are snapshot dashboards — lock-free in both arms —
/// whose windows exercise the visibility-filtered live-index probes.
pub const RANGEMIX_WRITE_PCT: u32 = 70;

/// Range statements per `rangemix` program (reader: BETWEEN window and
/// composite window; booker: locked window and window UPDATE; inserter
/// counts as one) — the denominator of rows-scanned-per-statement.
pub const RANGEMIX_STATEMENTS_PER_TXN: usize = 2;

/// One measured point of the `rangemix` driver: [`ScalingPoint`] plus
/// the access-path counters the range plans exist to change.
#[derive(Debug, Clone)]
pub struct RangemixPoint {
    pub scaling: ScalingPoint,
    /// Base rows materialized as scan/probe candidates across the run.
    pub rows_scanned: u64,
    /// Index probes served (range + point plans, locked and snapshot).
    pub index_lookups: u64,
    /// Snapshot reads served by visibility-filtered probes of the live
    /// index — each one a per-snapshot index rebuild that no longer
    /// happens. 0 exactly in the forced-scan ablation.
    pub index_rebuilds_avoided: u64,
    /// `rows_scanned` per committed statement: O(window) with the btree
    /// indexes, O(table) without.
    pub rows_per_statement: f64,
}

/// One `rangemix` driver series: the range-heavy mix with the btree
/// indexes installed, or the forced-scan ablation (same data, same
/// programs, every window a table-S heap scan).
#[derive(Debug, Clone)]
pub struct RangemixSeries {
    pub label: String,
    pub indexed: bool,
    pub points: Vec<RangemixPoint>,
}

/// Measure one `rangemix` point: committed-txns/sec and access-path
/// counters for the range-heavy mix at a connection count, with or
/// without the btree indexes of [`range_index_script`].
///
/// With the indexes every date window lowers to a `RangeProbe` — the
/// locked path takes table-IS + next-key locks over the probed interval
/// (instead of table-S over everything), and the snapshot path probes
/// the live history-union index and filters by version visibility
/// (instead of materializing an indexed copy). Without them every window
/// scans. The lock timeout is shortened as in `pointmix` so the
/// ablation's table-lock standoffs churn into retries.
pub fn run_rangemix(scale: &Scale, connections: usize, indexed: bool) -> RangemixPoint {
    assert!(
        !scale.cost.per_statement.is_zero(),
        "the rangemix driver needs a non-zero CostModel"
    );
    let data = scale.data();
    let mut cfg = engine_config(WorkloadMode::Transactional, scale.cost, false);
    cfg.lock_timeout = Duration::from_millis(3);
    let engine = data.build_engine(cfg);
    engine
        .setup(&range_seed_script(&data))
        .expect("valid seed script");
    if indexed {
        engine.setup(range_index_script()).expect("valid index DDL");
    }
    let mut sched = scheduler_for(engine, connections);
    let programs = generate_range_mix(&data, scale.txns, RANGEMIX_WRITE_PCT, scale.seed);
    let n = programs.len();
    let start = Instant::now();
    for p in programs {
        sched.submit(p);
    }
    let stats = sched.drain();
    let seconds = start.elapsed().as_secs_f64();
    let scaling = scaling_point(
        Point {
            label: format!("rangemix index={}", if indexed { "on" } else { "off" }),
            x: connections as f64,
            seconds,
            committed: stats.committed,
            failed: n - stats.committed,
            syncs: stats.syncs,
        },
        connections,
    );
    let statements = (scaling.committed * RANGEMIX_STATEMENTS_PER_TXN).max(1);
    RangemixPoint {
        rows_scanned: stats.rows_scanned,
        index_lookups: stats.index_lookups,
        index_rebuilds_avoided: stats.index_rebuilds_avoided,
        rows_per_statement: stats.rows_scanned as f64 / statements as f64,
        scaling,
    }
}

/// The `rangemix` experiment: the range-heavy mix over
/// [`SCALING_CONNECTIONS`], btree-indexed vs the forced-scan ablation.
/// The acceptance target is indexed ≥ 3× forced-scan (committed
/// txns/sec) at 8 connections, with snapshot range/point reads doing
/// zero per-snapshot index rebuilds (`index_rebuilds_avoided` counts
/// every probe that replaced one).
pub fn run_rangemix_series(scale: &Scale) -> Vec<RangemixSeries> {
    [true, false]
        .iter()
        .map(|&indexed| RangemixSeries {
            label: format!("rangemix index={}", if indexed { "on" } else { "off" }),
            indexed,
            points: SCALING_CONNECTIONS
                .iter()
                .map(|&c| run_rangemix(scale, c, indexed))
                .collect(),
        })
        .collect()
}

/// Throughput ratio of the indexed series over the forced-scan ablation
/// at the highest connection count (the acceptance figure).
pub fn rangemix_speedup(series: &[RangemixSeries]) -> f64 {
    let at_max = |indexed: bool| {
        series
            .iter()
            .find(|s| s.indexed == indexed)
            .and_then(|s| s.points.last())
            .map_or(0.0, |p| p.scaling.txns_per_sec)
    };
    let (on, off) = (at_max(true), at_max(false));
    if off > 0.0 {
        on / off
    } else {
        0.0
    }
}

/// Serialize rangemix series as the `BENCH_range.json` baseline tracked
/// as a CI artifact (the [`pointmix_json`] shape plus the
/// rebuilds-avoided counter).
pub fn rangemix_json(scale: &Scale, series: &[RangemixSeries]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"rangemix\",\n");
    out.push_str(&format!("  \"txns_per_point\": {},\n", scale.txns));
    out.push_str(&format!("  \"write_pct\": {RANGEMIX_WRITE_PCT},\n"));
    out.push_str(&format!(
        "  \"indexed_over_forced_scan_at_max\": {:.3},\n  \"series\": [\n",
        rangemix_speedup(series)
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"label\": \"{}\",\n      \"indexed\": {},\n      \"speedup_max_over_1\": {:.3},\n      \"points\": [\n",
            s.label,
            s.indexed,
            scaling_speedup(&s.points.iter().map(|p| p.scaling.clone()).collect::<Vec<_>>())
        ));
        for (pi, p) in s.points.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"connections\": {}, \"seconds\": {:.6}, \"committed\": {}, \"failed\": {}, \"txns_per_sec\": {:.3}, \"rows_scanned\": {}, \"index_lookups\": {}, \"index_rebuilds_avoided\": {}, \"rows_per_statement\": {:.3}}}{}\n",
                p.scaling.connections,
                p.scaling.seconds,
                p.scaling.committed,
                p.scaling.failed,
                p.scaling.txns_per_sec,
                p.rows_scanned,
                p.index_lookups,
                p.index_rebuilds_avoided,
                p.rows_per_statement,
                if pi + 1 < s.points.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "      ]\n    }}{}\n",
            if si + 1 < series.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Connection counts measured by the `sharding` driver (the scaling
/// claim is "past 8 connections", so the sweep runs to 16).
pub const SHARDING_CONNECTIONS: [usize; 5] = [1, 2, 4, 8, 16];

/// Shard counts measured by the `sharding` driver.
pub const SHARDING_SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Percentage of cross-shard (two-table, two-shard) transactions in the
/// cross mix; the local mix uses 0.
pub const SHARDING_CROSS_PCT: u32 = 50;

/// One measured point of the `sharding` driver: [`ScalingPoint`] plus
/// the cross-shard commit counters and the per-shard sync spread.
#[derive(Debug, Clone)]
pub struct ShardingPoint {
    pub scaling: ScalingPoint,
    /// Cross-shard units committed through the two-phase record.
    pub cross_shard_commits: u64,
    /// `CrossPrepare` records written (one per participant per unit).
    pub cross_shard_prepares: u64,
    /// Device syncs per shard — skew here shows commit-pressure spread.
    pub shard_syncs: Vec<u64>,
    /// Waits-for cycles broken by victim selection during the run.
    pub deadlocks: u64,
    /// Expired lock waits (with detection off, cross-shard cycles
    /// surface here — no single shard's detector can see them).
    pub timeouts: u64,
    /// Cross-shard detector convictions (a subset of `deadlocks`).
    pub deadlock_victims: u64,
    /// Edge-chasing probes launched by blocked waiters.
    pub detection_probes: u64,
}

/// One `sharding` driver series: a shard count × mix locality.
#[derive(Debug, Clone)]
pub struct ShardingSeries {
    pub label: String,
    pub shards: usize,
    pub cross_pct: u32,
    pub points: Vec<ShardingPoint>,
}

/// Measure one `sharding` point: committed-txns/sec of the shard mix at
/// a shard count and connection count.
///
/// The engine runs with WAL group commit **off** — every commit pays its
/// own serialized device sync on its shard's segment — because that is
/// the axis sharding parallelizes: one log device serializes all syncs,
/// N per-shard devices sync concurrently. (Group-commit batching on a
/// single device is the `durability` driver's axis; composing both still
/// multiplies sync bandwidth by N.) Cross-shard transactions sync every
/// participant segment before the unit commits, which is the measured
/// cross-shard tax.
pub fn run_sharding(
    scale: &Scale,
    shards: usize,
    connections: usize,
    cross_pct: u32,
) -> ShardingPoint {
    assert!(
        !scale.cost.per_commit.is_zero(),
        "the sharding driver needs a non-zero sync latency (cost.per_commit)"
    );
    let data = scale.data();
    let mut cfg = engine_config(WorkloadMode::Transactional, scale.cost, false);
    cfg.shards = shards;
    cfg.wal_group_commit = false;
    let engine = data.build_engine(cfg);
    engine
        .setup(&point_seed_script(&data))
        .expect("valid seed script");
    engine.setup(shard_index_script()).expect("valid index DDL");
    let mut sched = scheduler_for(engine, connections);
    let programs = generate_shard_mix(&data, scale.txns, cross_pct, shards, scale.seed);
    let n = programs.len();
    let start = Instant::now();
    for p in programs {
        sched.submit(p);
    }
    let stats = sched.drain();
    let seconds = start.elapsed().as_secs_f64();
    let scaling = scaling_point(
        Point {
            label: format!("shards={shards} cross={cross_pct}%"),
            x: connections as f64,
            seconds,
            committed: stats.committed,
            failed: n - stats.committed,
            syncs: stats.syncs,
        },
        connections,
    );
    ShardingPoint {
        scaling,
        cross_shard_commits: stats.cross_shard_commits,
        cross_shard_prepares: stats.cross_shard_prepares,
        shard_syncs: stats.shard_syncs.clone(),
        deadlocks: stats.deadlocks,
        timeouts: stats.timeouts,
        deadlock_victims: stats.deadlock_victims,
        detection_probes: stats.detection_probes,
    }
}

/// Outcome of the `auditgraph` driver: the serialized lock-order graph
/// (with its offline cycle report) plus the contention counters of the
/// run that produced it.
#[derive(Debug, Clone)]
pub struct AuditGraphReport {
    /// `{"edges": [...], "cycles": [...]}` from the engine's protocol
    /// auditor, or `None` when this build runs unaudited (release
    /// without the `audit` feature).
    pub graph_json: Option<String>,
    /// Lock-protocol events the auditor checked online (0 unaudited).
    pub audit_events: u64,
    /// Waits-for cycles broken by victim selection.
    pub deadlocks: u64,
    /// Expired lock waits (where cross-shard cycles surface).
    pub timeouts: u64,
    pub committed: usize,
}

/// The `auditgraph` driver: run the contended 50%-cross-shard mix on a
/// 4-shard engine — the workload with the richest resource-ordering
/// graph, since cross-shard units interleave table, index-key, and row
/// locks on two shards at once — then serialize the auditor's
/// accumulated lock-order graph and cycle report. CI uploads the result
/// (`AUDIT_lock_graph.json`) next to the BENCH baselines.
pub fn run_audit_graph(scale: &Scale) -> AuditGraphReport {
    let shards = 4;
    let data = scale.data();
    let mut cfg = engine_config(WorkloadMode::Transactional, scale.cost, false);
    cfg.shards = shards;
    let engine = data.build_engine(cfg);
    engine
        .setup(&point_seed_script(&data))
        .expect("valid seed script");
    engine.setup(shard_index_script()).expect("valid index DDL");
    let mut sched = scheduler_for(std::sync::Arc::clone(&engine), 8);
    let programs = generate_shard_mix(&data, scale.txns, SHARDING_CROSS_PCT, shards, scale.seed);
    for p in programs {
        sched.submit(p);
    }
    let stats = sched.drain();
    AuditGraphReport {
        graph_json: engine.lock_order_graph_json(),
        audit_events: engine.audit_events(),
        deadlocks: engine.deadlocks(),
        timeouts: engine.timeouts(),
        committed: stats.committed,
    }
}

/// The `sharding` experiment: the shard-local mix and the 50%-cross mix
/// over [`SHARDING_SHARD_COUNTS`] × [`SHARDING_CONNECTIONS`]. The
/// acceptance targets are 4-shard local throughput ≥ 1.5× 1-shard at 8
/// connections, parity at 1 connection, and a measurable cross-shard tax
/// (local over cross at 4 shards).
pub fn run_sharding_series(scale: &Scale) -> Vec<ShardingSeries> {
    let mut out = Vec::new();
    for &cross_pct in &[0u32, SHARDING_CROSS_PCT] {
        for &shards in &SHARDING_SHARD_COUNTS {
            let points = SHARDING_CONNECTIONS
                .iter()
                .map(|&c| run_sharding(scale, shards, c, cross_pct))
                .collect();
            out.push(ShardingSeries {
                label: format!(
                    "{} shards={shards}",
                    if cross_pct == 0 { "local" } else { "cross" }
                ),
                shards,
                cross_pct,
                points,
            });
        }
    }
    out
}

/// Throughput of one series at a given connection count (0.0 if absent).
fn sharding_tps_at(series: &[ShardingSeries], shards: usize, cross_pct: u32, conns: usize) -> f64 {
    series
        .iter()
        .find(|s| s.shards == shards && s.cross_pct == cross_pct)
        .and_then(|s| s.points.iter().find(|p| p.scaling.connections == conns))
        .map_or(0.0, |p| p.scaling.txns_per_sec)
}

/// The headline acceptance figure: shard-local throughput at 4 shards
/// over 1 shard, at 8 connections.
pub fn sharding_local_speedup(series: &[ShardingSeries]) -> f64 {
    let (four, one) = (
        sharding_tps_at(series, 4, 0, 8),
        sharding_tps_at(series, 1, 0, 8),
    );
    if one > 0.0 {
        four / one
    } else {
        0.0
    }
}

/// The cross-shard commit tax: local over 50%-cross throughput at 4
/// shards and 8 connections (> 1 — prepares sync every participant).
pub fn sharding_cross_tax(series: &[ShardingSeries]) -> f64 {
    let (local, cross) = (
        sharding_tps_at(series, 4, 0, 8),
        sharding_tps_at(series, 4, SHARDING_CROSS_PCT, 8),
    );
    if cross > 0.0 {
        local / cross
    } else {
        0.0
    }
}

/// Serialize sharding series as the `BENCH_sharding.json` baseline
/// tracked as a CI artifact (the [`scaling_json`] shape plus the
/// cross-shard counters and the per-shard sync spread per point).
pub fn sharding_json(scale: &Scale, series: &[ShardingSeries]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"sharding\",\n");
    out.push_str(&format!("  \"txns_per_point\": {},\n", scale.txns));
    out.push_str(&format!(
        "  \"sync_latency_us\": {},\n",
        scale.cost.per_commit.as_micros()
    ));
    out.push_str(&format!("  \"cross_pct\": {SHARDING_CROSS_PCT},\n"));
    out.push_str(&format!(
        "  \"local_4_over_1_at_8\": {:.3},\n",
        sharding_local_speedup(series)
    ));
    out.push_str(&format!(
        "  \"cross_tax_at_4_shards\": {:.3},\n  \"series\": [\n",
        sharding_cross_tax(series)
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"label\": \"{}\",\n      \"shards\": {},\n      \"cross_pct\": {},\n      \"speedup_max_over_1\": {:.3},\n      \"points\": [\n",
            s.label,
            s.shards,
            s.cross_pct,
            scaling_speedup(&s.points.iter().map(|p| p.scaling.clone()).collect::<Vec<_>>())
        ));
        for (pi, p) in s.points.iter().enumerate() {
            let syncs: Vec<String> = p.shard_syncs.iter().map(|n| n.to_string()).collect();
            out.push_str(&format!(
                "        {{\"connections\": {}, \"seconds\": {:.6}, \"committed\": {}, \"failed\": {}, \"txns_per_sec\": {:.3}, \"syncs_per_commit\": {:.4}, \"cross_shard_commits\": {}, \"cross_shard_prepares\": {}, \"deadlocks\": {}, \"timeouts\": {}, \"deadlock_victims\": {}, \"detection_probes\": {}, \"shard_syncs\": [{}]}}{}\n",
                p.scaling.connections,
                p.scaling.seconds,
                p.scaling.committed,
                p.scaling.failed,
                p.scaling.txns_per_sec,
                p.scaling.syncs_per_commit,
                p.cross_shard_commits,
                p.cross_shard_prepares,
                p.deadlocks,
                p.timeouts,
                p.deadlock_victims,
                p.detection_probes,
                syncs.join(", "),
                if pi + 1 < s.points.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "      ]\n    }}{}\n",
            if si + 1 < series.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Shard count of the `hotcycle` driver (the acceptance point).
pub const HOTCYCLE_SHARDS: usize = 4;

/// Connection count of the `hotcycle` driver.
pub const HOTCYCLE_CONNECTIONS: usize = 8;

/// Hot-row pool size — small enough that opposite-order collisions (and
/// therefore cross-shard cycles) are routine, not rare.
pub const HOTCYCLE_HOT_ROWS: usize = 2;

/// One arm of the `hotcycle` experiment: the deadlock-prone hot-row mix
/// under one [`DeadlockPolicy`].
#[derive(Debug, Clone)]
pub struct HotCycleArm {
    pub label: String,
    pub seconds: f64,
    pub committed: usize,
    pub txns_per_sec: f64,
    /// Waits-for cycles broken by victim selection (local + global).
    pub deadlocks: u64,
    /// Expired lock waits — the acceptance target is **zero** on the
    /// detect arm: every cycle must die by explicit conviction, never by
    /// waiting out the clock.
    pub timeouts: u64,
    /// Cross-shard detector convictions.
    pub deadlock_victims: u64,
    /// Edge-chasing probes launched by blocked waiters.
    pub detection_probes: u64,
    /// Median blocked-lock-wait time (µs), over waits that slept.
    pub p50_block_us: u64,
    /// 99th-percentile blocked-lock-wait time (µs). On the timeout arm
    /// this sits at the full `lock_timeout`; detection pulls it down to
    /// the probe cadence.
    pub p99_block_us: u64,
    pub max_block_us: u64,
}

/// Outcome of the `hotcycle` driver: the same mix measured with global
/// detection on and off.
#[derive(Debug, Clone)]
pub struct HotCycleReport {
    pub detect: HotCycleArm,
    pub timeout: HotCycleArm,
}

impl HotCycleReport {
    /// The headline figure: detect-arm committed-txns/sec over the
    /// timeout-only ablation (acceptance: ≥ 2).
    pub fn detect_speedup(&self) -> f64 {
        if self.timeout.txns_per_sec > 0.0 {
            self.detect.txns_per_sec / self.timeout.txns_per_sec
        } else {
            0.0
        }
    }
}

/// `samples.len() * p`-th order statistic (0 on an empty set).
fn percentile_us(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
    samples[idx.min(samples.len() - 1)]
}

/// Measure one `hotcycle` arm: the hot-row opposite-order mix at
/// [`HOTCYCLE_SHARDS`] shards and [`HOTCYCLE_CONNECTIONS`] connections
/// under the given deadlock policy. Victims and timeouts both retry
/// through the scheduler, so the arms commit the same work — they
/// differ only in how long each cycle stalls before someone aborts.
pub fn run_hotcycle_arm(scale: &Scale, policy: DeadlockPolicy) -> HotCycleArm {
    let data = scale.data();
    let mut cfg = engine_config(WorkloadMode::Transactional, scale.cost, false);
    cfg.shards = HOTCYCLE_SHARDS;
    cfg.deadlock = policy;
    let engine = data.build_engine(cfg);
    engine
        .setup(&point_seed_script(&data))
        .expect("valid seed script");
    engine.setup(shard_index_script()).expect("valid index DDL");
    let mut sched = scheduler_for(std::sync::Arc::clone(&engine), HOTCYCLE_CONNECTIONS);
    // Half the usual point budget: cycle stalls (not statement cost)
    // dominate this driver, and the timeout arm pays 250 ms per cycle.
    let count = (scale.txns / 2).max(50);
    let programs = generate_hot_cycle(&data, count, HOTCYCLE_HOT_ROWS, HOTCYCLE_SHARDS, scale.seed);
    let start = Instant::now();
    for p in programs {
        sched.submit(p);
    }
    let stats = sched.drain();
    let seconds = start.elapsed().as_secs_f64();
    let mut waits = engine.lock_wait_micros();
    HotCycleArm {
        label: match policy {
            DeadlockPolicy::Detect => "detect".to_string(),
            DeadlockPolicy::Timeout => "timeout".to_string(),
        },
        seconds,
        committed: stats.committed,
        txns_per_sec: if seconds > 0.0 {
            stats.committed as f64 / seconds
        } else {
            0.0
        },
        deadlocks: stats.deadlocks,
        timeouts: stats.timeouts,
        deadlock_victims: stats.deadlock_victims,
        detection_probes: stats.detection_probes,
        p50_block_us: percentile_us(&mut waits, 0.50),
        p99_block_us: percentile_us(&mut waits, 0.99),
        max_block_us: waits.last().copied().unwrap_or(0),
    }
}

/// The `hotcycle` experiment: detection versus the timeout-only
/// ablation on the same deadlock-prone mix.
pub fn run_hotcycle(scale: &Scale) -> HotCycleReport {
    HotCycleReport {
        detect: run_hotcycle_arm(scale, DeadlockPolicy::Detect),
        timeout: run_hotcycle_arm(scale, DeadlockPolicy::Timeout),
    }
}

/// Serialize the hotcycle report as the `BENCH_deadlock.json` baseline
/// tracked as a CI artifact.
pub fn hotcycle_json(scale: &Scale, report: &HotCycleReport) -> String {
    let mut out = String::from("{\n  \"experiment\": \"hotcycle\",\n");
    out.push_str(&format!(
        "  \"shards\": {HOTCYCLE_SHARDS},\n  \"connections\": {HOTCYCLE_CONNECTIONS},\n  \"hot_rows\": {HOTCYCLE_HOT_ROWS},\n"
    ));
    out.push_str(&format!(
        "  \"txns_per_arm\": {},\n",
        (scale.txns / 2).max(50)
    ));
    out.push_str(&format!(
        "  \"detect_speedup_over_timeout\": {:.3},\n  \"arms\": [\n",
        report.detect_speedup()
    ));
    let arms = [&report.detect, &report.timeout];
    for (i, a) in arms.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"seconds\": {:.6}, \"committed\": {}, \"txns_per_sec\": {:.3}, \"deadlocks\": {}, \"timeouts\": {}, \"deadlock_victims\": {}, \"detection_probes\": {}, \"p50_block_us\": {}, \"p99_block_us\": {}, \"max_block_us\": {}}}{}\n",
            a.label,
            a.seconds,
            a.committed,
            a.txns_per_sec,
            a.deadlocks,
            a.timeouts,
            a.deadlock_victims,
            a.detection_probes,
            a.p50_block_us,
            a.p99_block_us,
            a.max_block_us,
            if i + 1 < arms.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One measured point of the `recovery` driver: restart cost after a
/// crash at a given transaction count.
#[derive(Debug, Clone)]
pub struct RecoveryPoint {
    /// Transactions submitted before the crash.
    pub txns: usize,
    pub committed: usize,
    /// Bytes a restart must read (the retained device contents) — bounded
    /// by checkpoint truncation, O(history) without it.
    pub retained_log_bytes: u64,
    /// Logical log length (total bytes ever appended; monotone).
    pub logical_log_bytes: u64,
    /// Wall time of one `recover()` pass over the durable log (best of
    /// several, microseconds).
    pub recovery_micros: f64,
    /// Records replayed after the base image (equals the whole log when
    /// checkpointing is off).
    pub replayed_records: usize,
    /// Checkpoint images written before the crash.
    pub checkpoints: u64,
}

/// One `recovery` driver series: the classical Figure 6(a) mix with
/// checkpointing (and WAL truncation) on or off.
#[derive(Debug, Clone)]
pub struct RecoverySeries {
    pub label: String,
    pub checkpointing: bool,
    pub points: Vec<RecoveryPoint>,
}

/// Measure one crash-recovery point: run `txns` classical transactions
/// (zero cost model — the workload only exists to grow the log), crash,
/// and time recovery from the durable prefix.
pub fn run_recovery(scale: &Scale, txns: usize, checkpointing: bool) -> RecoveryPoint {
    let data = scale.data();
    let engine = data.build_engine(engine_config(
        WorkloadMode::Transactional,
        CostModel::ZERO,
        false,
    ));
    let checkpoint = if checkpointing {
        // Reclaim every 4 runs, or sooner if a run published a lot —
        // whichever cadence fires first (both knobs exercised).
        CheckpointPolicy {
            every_runs: Some(4),
            every_bytes: Some(64 * 1024),
            truncate: true,
        }
    } else {
        CheckpointPolicy::DISABLED
    };
    let mut sched = Scheduler::new(
        engine.clone(),
        SchedulerConfig {
            connections: 4,
            // Many small runs => many settle boundaries (checkpoint
            // sites) and several commit batches per point.
            trigger: RunTrigger::Arrivals(25),
            max_attempts: 50,
            checkpoint,
        },
    );
    let programs = generate(Family::NoSocial, &data, txns, scale.seed);
    for p in programs {
        sched.submit(p);
    }
    let stats = sched.drain();

    // Power loss, then time the recovery scan+replay (best of 5 to shave
    // scheduler noise; the work is deterministic).
    engine.wal.crash();
    let records = engine.wal.durable_records().expect("clean log");
    let mut best = f64::INFINITY;
    let mut replayed = 0usize;
    for _ in 0..5 {
        let t0 = Instant::now();
        let out = youtopia_wal::recover(&records).expect("clean log");
        let us = t0.elapsed().as_secs_f64() * 1e6;
        best = best.min(us);
        replayed = out.replayed;
        std::hint::black_box(&out.db);
    }
    RecoveryPoint {
        txns,
        committed: stats.committed,
        retained_log_bytes: engine.wal.retained_len(),
        logical_log_bytes: engine.wal.len(),
        recovery_micros: best,
        replayed_records: replayed,
        checkpoints: stats.checkpoints,
    }
}

/// Transaction counts measured by the `recovery` driver, scaled from
/// `scale.txns`: restart cost is plotted against a growing history.
pub fn recovery_txn_counts(scale: &Scale) -> Vec<usize> {
    [1usize, 2, 4, 8]
        .iter()
        .map(|&m| (scale.txns * m / 4).max(16))
        .collect()
}

/// The `recovery` experiment: durable log length and recovery wall time
/// vs. transaction count, with checkpointing on and off. With
/// checkpoints the retained log and replay cost are O(delta since the
/// last image) — flat as history grows; without them both are
/// O(history).
pub fn run_recovery_series(scale: &Scale) -> Vec<RecoverySeries> {
    [true, false]
        .iter()
        .map(|&checkpointing| RecoverySeries {
            label: format!(
                "NoSocial-T ckpt={}",
                if checkpointing { "on" } else { "off" }
            ),
            checkpointing,
            points: recovery_txn_counts(scale)
                .into_iter()
                .map(|n| run_recovery(scale, n, checkpointing))
                .collect(),
        })
        .collect()
}

/// Serialize recovery series as the `BENCH_recovery.json` baseline
/// tracked as a CI artifact.
pub fn recovery_json(scale: &Scale, series: &[RecoverySeries]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"recovery\",\n");
    out.push_str(&format!(
        "  \"max_txns\": {},\n  \"series\": [\n",
        scale.txns
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"label\": \"{}\",\n      \"checkpointing\": {},\n      \"points\": [\n",
            s.label, s.checkpointing
        ));
        for (pi, p) in s.points.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"txns\": {}, \"committed\": {}, \"retained_log_bytes\": {}, \"logical_log_bytes\": {}, \"recovery_micros\": {:.2}, \"replayed_records\": {}, \"checkpoints\": {}}}{}\n",
                p.txns,
                p.committed,
                p.retained_log_bytes,
                p.logical_log_bytes,
                p.recovery_micros,
                p.replayed_records,
                p.checkpoints,
                if pi + 1 < s.points.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "      ]\n    }}{}\n",
            if si + 1 < series.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Ablation configurations (DESIGN.md Ab1–Ab4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    GroupCommitOff,
    SolverGeneralOnly,
    TableGranularity,
}

/// Run a workload family under an ablated engine configuration.
///
/// Note: `TableGranularity` + `Family::Entangled` livelocks by design —
/// partners insert into the same `Reserve` table, and a table-X lock held
/// to a group commit that cannot happen without the partner is a structural
/// standoff (documented as a negative result in EXPERIMENTS.md). Measure
/// that ablation on `NoSocial`/`Social`.
pub fn run_ablated(
    scale: &Scale,
    ablation: Option<Ablation>,
    family: Family,
    connections: usize,
) -> Point {
    let data = scale.data();
    let mut cfg: EngineConfig = engine_config(WorkloadMode::Transactional, scale.cost, false);
    match ablation {
        Some(Ablation::GroupCommitOff) => cfg.isolation = IsolationMode::AllowWidows,
        Some(Ablation::SolverGeneralOnly) => {
            cfg.solver = SolverConfig {
                pairwise_fast_path: false,
                ..SolverConfig::default()
            }
        }
        Some(Ablation::TableGranularity) => cfg.granularity = LockGranularity::Table,
        None => {}
    }
    let engine = data.build_engine(cfg);
    // Few retries: ablated configurations that livelock should fail fast
    // rather than grind through the default retry budget.
    let mut sched = Scheduler::new(
        engine,
        SchedulerConfig {
            connections,
            trigger: RunTrigger::Manual,
            max_attempts: 8,
            checkpoint: CheckpointPolicy::DISABLED,
        },
    );
    let programs = generate(family, &data, scale.txns, scale.seed);
    let start = Instant::now();
    for p in programs {
        sched.submit(p);
    }
    let stats = sched.drain();
    Point {
        label: match ablation {
            None => "baseline".into(),
            Some(Ablation::GroupCommitOff) => "group-commit-off".into(),
            Some(Ablation::SolverGeneralOnly) => "solver-general".into(),
            Some(Ablation::TableGranularity) => "table-locks".into(),
        },
        x: connections as f64,
        seconds: start.elapsed().as_secs_f64(),
        committed: stats.committed,
        failed: stats.failed,
        syncs: stats.syncs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            txns: 24,
            users: 60,
            cities: 4,
            flights: 80,
            cost: CostModel::ZERO,
            seed: 4,
        }
    }

    #[test]
    fn fig6a_driver_completes_all_families() {
        let s = tiny();
        for family in Family::ALL {
            for mode in [WorkloadMode::Transactional, WorkloadMode::QueryOnly] {
                let p = run_fig6a(&s, family, mode, 4);
                assert!(p.committed >= 20, "{} {:?}: {p:?}", family.label(), mode);
            }
        }
    }

    #[test]
    fn fig6b_driver_commits_paired_only() {
        let s = tiny();
        let p = run_fig6b(&s, 3, 5, 2);
        assert_eq!(p.committed, 24, "{p:?}");
    }

    #[test]
    fn fig6c_driver_handles_both_structures() {
        let s = tiny();
        for structure in [Structure::SpokeHub, Structure::Cyclic] {
            let p = run_fig6c(&s, structure, 3, 4, 3, 2);
            assert_eq!(p.committed, 12, "{}: {p:?}", structure.label());
        }
    }

    #[test]
    fn ablations_complete() {
        let s = tiny();
        for ab in [
            None,
            Some(Ablation::GroupCommitOff),
            Some(Ablation::SolverGeneralOnly),
        ] {
            let p = run_ablated(&s, ab, Family::Entangled, 2);
            assert!(p.committed >= 20, "{ab:?}: {p:?}");
        }
        // Table granularity: measured on NoSocial (no partner coupling).
        let p = run_ablated(&s, Some(Ablation::TableGranularity), Family::NoSocial, 2);
        assert!(p.committed >= 20, "table granularity: {p:?}");
    }

    #[test]
    fn scaling_speedup_at_8_connections_on_classical_mix() {
        // The ISSUE-2 acceptance criterion: with a non-zero cost model,
        // 8 connections must commit at ≥ 2× the single-connection
        // throughput on the classical Figure 6(a) mix. Sleep-dominated
        // statements make this timing-robust (ideal speedup is ~8×).
        let scale = Scale {
            txns: 48,
            users: 60,
            cities: 4,
            flights: 80,
            cost: CostModel {
                per_statement: Duration::from_millis(2),
                per_entangled_eval: Duration::ZERO,
                per_commit: Duration::ZERO,
            },
            seed: 4,
        };
        let points: Vec<ScalingPoint> = [1usize, 8]
            .iter()
            .map(|&c| run_scaling(&scale, Family::NoSocial, WorkloadMode::Transactional, c))
            .collect();
        assert_eq!(points[0].committed, 48);
        assert_eq!(points[1].committed, 48);
        let speedup = scaling_speedup(&points);
        assert!(
            speedup >= 2.0,
            "connections=8 only {speedup:.2}x over connections=1 ({points:?})"
        );
    }

    #[test]
    fn group_commit_amortizes_syncs_below_one_per_commit() {
        // The ISSUE-3 acceptance criterion: with the group-commit pipeline
        // on, syncs-per-commit < 1 at connections >= 4; off, every commit
        // pays its own serialized sync (>= 1). The 2ms sync latency makes
        // batching windows wide enough to be timing-robust.
        let scale = Scale {
            txns: 48,
            users: 60,
            cities: 4,
            flights: 80,
            cost: CostModel {
                per_statement: Duration::ZERO,
                per_entangled_eval: Duration::ZERO,
                per_commit: Duration::from_millis(2),
            },
            seed: 4,
        };
        for family in [Family::NoSocial, Family::Entangled] {
            let on = scaling_point(
                run_fig6a_configured(&scale, family, WorkloadMode::Transactional, 4, true),
                4,
            );
            assert_eq!(on.committed, 48, "{}: {on:?}", family.label());
            assert!(
                on.syncs_per_commit < 1.0,
                "{}: expected amortization, got {:.3} syncs/commit",
                family.label(),
                on.syncs_per_commit
            );
        }
        let off = scaling_point(
            run_fig6a_configured(
                &scale,
                Family::NoSocial,
                WorkloadMode::Transactional,
                4,
                false,
            ),
            4,
        );
        assert!(
            off.syncs_per_commit >= 1.0,
            "without group commit every classical commit syncs: {off:?}"
        );
        // Entangled pairs without the pipeline: one serialized sync per
        // commit group (the paper's §4 amortization and nothing more).
        let off_ent = scaling_point(
            run_fig6a_configured(
                &scale,
                Family::Entangled,
                WorkloadMode::Transactional,
                4,
                false,
            ),
            4,
        );
        assert!(
            off_ent.syncs_per_commit >= 0.5,
            "without the pipeline a pair costs one sync: {off_ent:?}"
        );
    }

    #[test]
    fn readscale_driver_snapshot_reads_beat_the_lock_ablation() {
        // The ISSUE-5 acceptance criterion, in miniature: on the
        // read-mostly mix, taking readers off the lock manager must not
        // lose transactions and must not be slower than S-lock reads.
        // (The full ≥ 1.5× figure is measured by `repro readscale` at
        // bench scale; at this timing-robust test scale we assert
        // completion plus a strict win.)
        let scale = Scale {
            txns: 60,
            users: 60,
            cities: 4,
            flights: 80,
            cost: CostModel {
                per_statement: Duration::from_millis(1),
                per_entangled_eval: Duration::ZERO,
                per_commit: Duration::from_millis(1),
            },
            seed: 4,
        };
        let on = run_readscale(&scale, 8, true);
        assert_eq!(on.committed, 60, "snapshot mix commits everything: {on:?}");
        let off = run_readscale(&scale, 8, false);
        assert!(
            on.txns_per_sec > off.txns_per_sec,
            "snapshot reads must outscale S-lock reads: on={:.1} off={:.1}",
            on.txns_per_sec,
            off.txns_per_sec
        );
    }

    #[test]
    fn readscale_json_is_well_formed() {
        let scale = Scale::quick();
        let series = vec![
            ReadscaleSeries {
                label: "readmix snapshot=on".into(),
                snapshot_reads: true,
                points: vec![ScalingPoint {
                    connections: 8,
                    seconds: 0.5,
                    committed: 100,
                    failed: 0,
                    txns_per_sec: 200.0,
                    syncs_per_commit: 0.1,
                }],
            },
            ReadscaleSeries {
                label: "readmix snapshot=off".into(),
                snapshot_reads: false,
                points: vec![ScalingPoint {
                    connections: 8,
                    seconds: 1.0,
                    committed: 100,
                    failed: 0,
                    txns_per_sec: 100.0,
                    syncs_per_commit: 0.1,
                }],
            },
        ];
        assert_eq!(readscale_speedup(&series), 2.0);
        let json = readscale_json(&scale, &series);
        assert!(json.contains("\"experiment\": \"readscale\""));
        assert!(json.contains("\"snapshot_reads\": true"));
        assert!(json.contains("\"snapshot_on_over_off_at_max\": 2.000"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
        assert!(!json.contains(",\n  ]"), "no trailing commas:\n{json}");
    }

    #[test]
    fn pointmix_driver_index_beats_the_scan_ablation() {
        // The acceptance criterion, in miniature: on the point-access
        // mix the named index must not lose transactions, must beat the
        // scan ablation at 8 connections, and must cut rows-scanned per
        // point statement from O(table) to O(1). (The full ≥ 3× figure
        // is measured by `repro pointmix` at bench scale.)
        let scale = Scale {
            txns: 48,
            users: 60,
            cities: 4,
            flights: 80,
            cost: CostModel {
                per_statement: Duration::from_millis(1),
                per_entangled_eval: Duration::ZERO,
                per_commit: Duration::ZERO,
            },
            seed: 4,
        };
        let on = run_pointmix(&scale, 8, true);
        assert_eq!(
            on.scaling.committed, 48,
            "indexed mix commits everything: {on:?}"
        );
        let off = run_pointmix(&scale, 8, false);
        assert!(
            on.scaling.txns_per_sec > off.scaling.txns_per_sec,
            "index plans must outscale heap scans: on={:.1} off={:.1}",
            on.scaling.txns_per_sec,
            off.scaling.txns_per_sec
        );
        // O(1) vs O(table): every point statement probes ≤ a couple of
        // rows indexed, and at least half the (60-row) table unindexed.
        assert!(
            on.rows_per_statement < 4.0,
            "indexed point statements must be O(1): {on:?}"
        );
        assert!(
            off.rows_per_statement > 30.0,
            "unindexed point statements scan the heap: {off:?}"
        );
        assert!(on.index_lookups > 0 && off.index_lookups == 0);
    }

    #[test]
    fn rangemix_driver_range_plans_beat_the_forced_scan_ablation() {
        // The acceptance criterion, in miniature: on the range-heavy mix
        // the btree indexes must not lose transactions, must beat the
        // forced-scan ablation at 8 connections, and the snapshot
        // dashboards must be served by live-index probes — zero
        // per-snapshot rebuilds, counter-verified. (The full ≥ 3× figure
        // is measured by `repro rangemix` at bench scale.)
        let scale = Scale {
            txns: 48,
            users: 60,
            cities: 4,
            flights: 96,
            cost: CostModel {
                per_statement: Duration::from_millis(1),
                per_entangled_eval: Duration::ZERO,
                per_commit: Duration::ZERO,
            },
            seed: 4,
        };
        let on = run_rangemix(&scale, 8, true);
        assert_eq!(
            on.scaling.committed, 48,
            "indexed mix commits everything: {on:?}"
        );
        let off = run_rangemix(&scale, 8, false);
        assert!(
            on.scaling.txns_per_sec > off.scaling.txns_per_sec,
            "range plans must outscale forced scans: on={:.1} off={:.1}",
            on.scaling.txns_per_sec,
            off.scaling.txns_per_sec
        );
        // O(window) vs O(table): windows match ~96*3/64 ≈ 5 rows each.
        assert!(
            on.rows_per_statement < off.rows_per_statement / 2.0,
            "indexed windows must touch far fewer rows: on={:.1} off={:.1}",
            on.rows_per_statement,
            off.rows_per_statement
        );
        assert!(on.index_lookups > 0 && off.index_lookups == 0);
        // The index-aware MVCC claim: every snapshot dashboard probed the
        // live index (one avoided rebuild each); the ablation, with no
        // index to probe, avoided nothing — and more to the point had
        // nothing to rebuild either.
        assert!(
            on.index_rebuilds_avoided > 0,
            "snapshot windows must be served by live-index probes: {on:?}"
        );
        assert_eq!(
            off.index_rebuilds_avoided, 0,
            "the forced-scan ablation has no index to probe: {off:?}"
        );
    }

    #[test]
    fn rangemix_json_is_well_formed() {
        let scale = Scale::quick();
        let point = |tps: f64, avoided: u64| RangemixPoint {
            scaling: ScalingPoint {
                connections: 8,
                seconds: 0.5,
                committed: 100,
                failed: 0,
                txns_per_sec: tps,
                syncs_per_commit: 0.1,
            },
            rows_scanned: 500,
            index_lookups: if avoided > 0 { 200 } else { 0 },
            index_rebuilds_avoided: avoided,
            rows_per_statement: 2.5,
        };
        let series = vec![
            RangemixSeries {
                label: "rangemix index=on".into(),
                indexed: true,
                points: vec![point(400.0, 70)],
            },
            RangemixSeries {
                label: "rangemix index=off".into(),
                indexed: false,
                points: vec![point(100.0, 0)],
            },
        ];
        assert_eq!(rangemix_speedup(&series), 4.0);
        let json = rangemix_json(&scale, &series);
        assert!(json.contains("\"experiment\": \"rangemix\""));
        assert!(json.contains("\"indexed_over_forced_scan_at_max\": 4.000"));
        assert!(json.contains("\"index_rebuilds_avoided\": 70"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
        assert!(!json.contains(",\n  ]"), "no trailing commas:\n{json}");
    }

    #[test]
    fn pointmix_json_is_well_formed() {
        let scale = Scale::quick();
        let point = |tps: f64, rows: u64, lookups: u64| PointmixPoint {
            scaling: ScalingPoint {
                connections: 8,
                seconds: 0.5,
                committed: 100,
                failed: 0,
                txns_per_sec: tps,
                syncs_per_commit: 0.1,
            },
            rows_scanned: rows,
            index_lookups: lookups,
            rows_per_statement: rows as f64 / 200.0,
        };
        let series = vec![
            PointmixSeries {
                label: "pointmix index=on".into(),
                indexed: true,
                points: vec![point(300.0, 240, 400)],
            },
            PointmixSeries {
                label: "pointmix index=off".into(),
                indexed: false,
                points: vec![point(100.0, 60_000, 0)],
            },
        ];
        assert_eq!(pointmix_speedup(&series), 3.0);
        let json = pointmix_json(&scale, &series);
        assert!(json.contains("\"experiment\": \"pointmix\""));
        assert!(json.contains("\"indexed\": true"));
        assert!(json.contains("\"indexed\": false"));
        assert!(json.contains("\"indexed_over_noindex_at_max\": 3.000"));
        assert!(json.contains("\"rows_per_statement\": 1.200"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
        assert!(!json.contains(",\n  ]"), "no trailing commas:\n{json}");
    }

    #[test]
    fn recovery_driver_shows_bounded_restart_with_checkpoints() {
        // The ISSUE-4 acceptance criterion, in miniature: at the same
        // history length, checkpointing leaves a strictly smaller
        // retained log and replays strictly fewer records than full
        // replay — the O(history) -> O(delta) restart win.
        let s = Scale { txns: 64, ..tiny() };
        let n = *recovery_txn_counts(&s).last().unwrap();
        let on = run_recovery(&s, n, true);
        let off = run_recovery(&s, n, false);
        assert_eq!(on.committed, n, "{on:?}");
        assert_eq!(off.committed, n, "{off:?}");
        assert!(on.checkpoints >= 1, "cadence must fire: {on:?}");
        assert_eq!(off.checkpoints, 0);
        assert!(
            on.retained_log_bytes < off.retained_log_bytes,
            "checkpoint truncation must bound the log: {} vs {}",
            on.retained_log_bytes,
            off.retained_log_bytes
        );
        assert!(
            on.replayed_records < off.replayed_records,
            "checkpointed recovery must replay a suffix: {} vs {}",
            on.replayed_records,
            off.replayed_records
        );
        // Without checkpoints the logical and retained lengths coincide.
        assert_eq!(off.retained_log_bytes, off.logical_log_bytes);
    }

    #[test]
    fn recovery_json_is_well_formed() {
        let s = Scale::quick();
        let series = vec![
            RecoverySeries {
                label: "NoSocial-T ckpt=on".into(),
                checkpointing: true,
                points: vec![RecoveryPoint {
                    txns: 100,
                    committed: 100,
                    retained_log_bytes: 2048,
                    logical_log_bytes: 8192,
                    recovery_micros: 12.5,
                    replayed_records: 7,
                    checkpoints: 3,
                }],
            },
            RecoverySeries {
                label: "NoSocial-T ckpt=off".into(),
                checkpointing: false,
                points: vec![RecoveryPoint {
                    txns: 100,
                    committed: 100,
                    retained_log_bytes: 8192,
                    logical_log_bytes: 8192,
                    recovery_micros: 80.0,
                    replayed_records: 500,
                    checkpoints: 0,
                }],
            },
        ];
        let json = recovery_json(&s, &series);
        assert!(json.contains("\"experiment\": \"recovery\""));
        assert!(json.contains("\"checkpointing\": true"));
        assert!(json.contains("\"checkpointing\": false"));
        assert!(json.contains("\"replayed_records\": 7"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
        assert!(!json.contains(",\n  ]"), "no trailing commas:\n{json}");
    }

    #[test]
    fn durability_json_is_well_formed() {
        let scale = Scale::quick();
        let series = vec![DurabilitySeries {
            label: "NoSocial-T gc=on".into(),
            family: Family::NoSocial,
            group_commit: true,
            points: vec![ScalingPoint {
                connections: 4,
                seconds: 0.5,
                committed: 100,
                failed: 0,
                txns_per_sec: 200.0,
                syncs_per_commit: 0.4,
            }],
        }];
        let json = durability_json(&scale, &series);
        assert!(json.contains("\"experiment\": \"durability\""));
        assert!(json.contains("\"group_commit\": true"));
        assert!(json.contains("\"syncs_per_commit\": 0.4000"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
    }

    #[test]
    fn scaling_json_is_well_formed() {
        let scale = Scale::quick();
        let series = vec![(
            "NoSocial-T".to_string(),
            vec![
                ScalingPoint {
                    connections: 1,
                    seconds: 1.0,
                    committed: 100,
                    failed: 0,
                    txns_per_sec: 100.0,
                    syncs_per_commit: 1.0,
                },
                ScalingPoint {
                    connections: 8,
                    seconds: 0.25,
                    committed: 100,
                    failed: 0,
                    txns_per_sec: 400.0,
                    syncs_per_commit: 0.25,
                },
            ],
        )];
        let json = scaling_json(&scale, &series);
        assert!(json.contains("\"experiment\": \"scaling\""));
        assert!(json.contains("\"speedup_max_over_1\": 4.000"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
        assert!(!json.contains(",\n  ]"), "no trailing commas:\n{json}");
    }

    /// Sync-dominated scale for the sharding driver tests: commits pay a
    /// 2ms serialized device sync, statements are free, so throughput is
    /// bounded by per-shard sync bandwidth — the axis sharding scales.
    fn sharding_scale() -> Scale {
        Scale {
            txns: 48,
            users: 60,
            cities: 4,
            flights: 80,
            cost: CostModel {
                per_statement: Duration::ZERO,
                per_entangled_eval: Duration::ZERO,
                per_commit: Duration::from_millis(2),
            },
            seed: 4,
        }
    }

    #[test]
    fn sharding_driver_four_shards_outscale_one_on_the_local_mix() {
        // The ISSUE-7 acceptance criterion, in miniature: on the
        // shard-local mix at 8 connections, 4 per-shard commit pipelines
        // must reach ≥ 1.5× single-shard throughput (ideal is ~4× — four
        // log devices sync concurrently instead of queueing on one).
        let s = sharding_scale();
        let one = run_sharding(&s, 1, 8, 0);
        let four = run_sharding(&s, 4, 8, 0);
        assert_eq!(one.scaling.committed, 48, "{one:?}");
        assert_eq!(four.scaling.committed, 48, "{four:?}");
        assert_eq!(four.shard_syncs.len(), 4);
        assert!(
            four.shard_syncs.iter().filter(|&&n| n > 0).count() >= 2,
            "local mix must spread commits over shards: {:?}",
            four.shard_syncs
        );
        let ratio = four.scaling.txns_per_sec / one.scaling.txns_per_sec;
        assert!(
            ratio >= 1.5,
            "4 shards only {ratio:.2}x over 1 shard at 8 connections \
             (one={:.1} four={:.1} txns/s)",
            one.scaling.txns_per_sec,
            four.scaling.txns_per_sec
        );
    }

    #[test]
    fn sharding_driver_cross_mix_pays_the_two_phase_tax() {
        // Cross-shard transactions drive the CrossPrepare/CrossCommit
        // path (≥ 2 prepares per unit); the local mix never does.
        let s = sharding_scale();
        let cross = run_sharding(&s, 4, 8, SHARDING_CROSS_PCT);
        assert_eq!(cross.scaling.committed, 48, "{cross:?}");
        assert!(cross.cross_shard_commits > 0, "{cross:?}");
        assert!(cross.cross_shard_prepares >= 2 * cross.cross_shard_commits);
        let local = run_sharding(&s, 4, 8, 0);
        assert_eq!(local.cross_shard_commits, 0);
        assert_eq!(local.cross_shard_prepares, 0);
    }

    #[test]
    fn sharding_json_is_well_formed() {
        let scale = Scale::quick();
        let point = |conns: usize, tps: f64, prepares: u64| ShardingPoint {
            scaling: ScalingPoint {
                connections: conns,
                seconds: 0.5,
                committed: 100,
                failed: 0,
                txns_per_sec: tps,
                syncs_per_commit: 1.0,
            },
            cross_shard_commits: prepares / 2,
            cross_shard_prepares: prepares,
            shard_syncs: vec![25, 26, 24, 25],
            deadlocks: 0,
            timeouts: 1,
            deadlock_victims: 0,
            detection_probes: 0,
        };
        let series = vec![
            ShardingSeries {
                label: "local shards=1".into(),
                shards: 1,
                cross_pct: 0,
                points: vec![point(1, 50.0, 0), point(8, 100.0, 0)],
            },
            ShardingSeries {
                label: "local shards=4".into(),
                shards: 4,
                cross_pct: 0,
                points: vec![point(1, 50.0, 0), point(8, 300.0, 0)],
            },
            ShardingSeries {
                label: "cross shards=4".into(),
                shards: 4,
                cross_pct: SHARDING_CROSS_PCT,
                points: vec![point(1, 40.0, 100), point(8, 150.0, 100)],
            },
        ];
        assert_eq!(sharding_local_speedup(&series), 3.0);
        assert_eq!(sharding_cross_tax(&series), 2.0);
        let json = sharding_json(&scale, &series);
        assert!(json.contains("\"experiment\": \"sharding\""));
        assert!(json.contains("\"local_4_over_1_at_8\": 3.000"));
        assert!(json.contains("\"cross_tax_at_4_shards\": 2.000"));
        assert!(json.contains("\"shard_syncs\": [25, 26, 24, 25]"));
        assert!(json.contains("\"cross_shard_prepares\": 100"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
        assert!(!json.contains(",\n  ]"), "no trailing commas:\n{json}");
    }

    #[test]
    fn hotcycle_detect_arm_resolves_every_cycle_without_timeouts() {
        // The ISSUE-10 acceptance criterion, in miniature: on the
        // deadlock-prone mix, the detect arm must finish with zero
        // timeouts (every cycle dies by explicit conviction) and beat
        // the timeout-only ablation on committed-txns/sec.
        let s = Scale {
            txns: 120,
            ..sharding_scale()
        };
        let report = run_hotcycle(&s);
        assert_eq!(
            report.detect.timeouts, 0,
            "detection must preempt the timeout backstop: {report:?}"
        );
        assert!(
            report.detect.committed >= 60,
            "victims retry to commit: {report:?}"
        );
        assert!(
            report.detect_speedup() > 1.0,
            "detect arm must outrun the 250ms-stall ablation: {:.2}x \
             (detect={:.1} timeout={:.1} txns/s)",
            report.detect_speedup(),
            report.detect.txns_per_sec,
            report.timeout.txns_per_sec
        );
        // The ablation genuinely exercised the backstop, or the
        // comparison is vacuous.
        assert!(report.timeout.timeouts > 0, "{report:?}");
        assert_eq!(report.timeout.deadlock_victims, 0, "{report:?}");
        assert_eq!(report.timeout.detection_probes, 0, "{report:?}");
        if report.detect.deadlock_victims > 0 {
            assert!(report.detect.detection_probes > 0, "{report:?}");
        }
    }

    #[test]
    fn hotcycle_json_is_well_formed() {
        let scale = Scale::quick();
        let arm = |label: &str, tps: f64, timeouts: u64, victims: u64| HotCycleArm {
            label: label.to_string(),
            seconds: 1.0,
            committed: 300,
            txns_per_sec: tps,
            deadlocks: victims,
            timeouts,
            deadlock_victims: victims,
            detection_probes: victims * 3,
            p50_block_us: 900,
            p99_block_us: if timeouts > 0 { 250_000 } else { 12_000 },
            max_block_us: 260_000,
        };
        let report = HotCycleReport {
            detect: arm("detect", 200.0, 0, 14),
            timeout: arm("timeout", 80.0, 14, 0),
        };
        assert!((report.detect_speedup() - 2.5).abs() < 1e-9);
        let json = hotcycle_json(&scale, &report);
        assert!(json.contains("\"experiment\": \"hotcycle\""));
        assert!(json.contains("\"detect_speedup_over_timeout\": 2.500"));
        assert!(json.contains("\"label\": \"detect\""));
        assert!(json.contains("\"p99_block_us\": 250000"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
        assert!(!json.contains(",\n  ]"), "no trailing commas:\n{json}");
    }

    #[test]
    fn table_granularity_livelocks_entangled_pairs() {
        // The structural standoff documented in EXPERIMENTS.md: partners
        // cannot group-commit while one holds a table-X lock the other
        // needs. All pairs time out.
        let mut s = tiny();
        s.txns = 4;
        let p = run_ablated(&s, Some(Ablation::TableGranularity), Family::Entangled, 2);
        assert_eq!(p.committed, 0, "{p:?}");
    }
}
