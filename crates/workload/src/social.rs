//! Synthetic social graph standing in for the Slashdot `soc-Slashdot0902`
//! dataset \[1\] the paper uses.
//!
//! The experiments use the graph only to pick *friend pairs/sets* that
//! coordinate, so any heavy-tailed friendship graph with the same selection
//! procedure exercises identical code paths (see DESIGN.md, substitution
//! table). We generate a preferential-attachment graph parameterised to
//! Slashdot-like statistics (average degree ≈ 12 at full scale), seeded and
//! fully deterministic.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// An undirected social graph over users `0..n`.
#[derive(Debug, Clone)]
pub struct SocialGraph {
    adj: Vec<Vec<u32>>,
    edge_count: usize,
}

impl SocialGraph {
    /// Preferential attachment (Barabási–Albert style): each new node
    /// attaches to `m` existing nodes chosen proportionally to degree.
    pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> SocialGraph {
        assert!(n >= 2, "need at least two users");
        let m = m.max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        // Degree-proportional sampling via a repeated-endpoint urn.
        let mut urn: Vec<u32> = Vec::with_capacity(2 * n * m);
        let mut edge_count = 0usize;
        // Seed edge.
        adj[0].push(1);
        adj[1].push(0);
        urn.extend([0, 1]);
        edge_count += 1;
        for v in 2..n {
            let mut targets = Vec::with_capacity(m);
            let mut guard = 0;
            while targets.len() < m.min(v) && guard < 100 {
                guard += 1;
                let pick = urn[rng.gen_range(0..urn.len())];
                if pick as usize != v && !targets.contains(&pick) {
                    targets.push(pick);
                }
            }
            for &t in &targets {
                adj[v].push(t);
                adj[t as usize].push(v as u32);
                urn.extend([v as u32, t]);
                edge_count += 1;
            }
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        SocialGraph { adj, edge_count }
    }

    /// Slashdot-like parameterisation: m = 6 → average degree ≈ 12,
    /// matching soc-Slashdot0902's 82k nodes / 948k edges ratio.
    pub fn slashdot_like(n: usize, seed: u64) -> SocialGraph {
        SocialGraph::preferential_attachment(n, 6, seed)
    }

    pub fn len(&self) -> usize {
        self.adj.len()
    }

    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    pub fn friends(&self, u: u32) -> &[u32] {
        &self.adj[u as usize]
    }

    pub fn are_friends(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// A deterministic random friend of `u`.
    pub fn random_friend(&self, u: u32, rng: &mut StdRng) -> Option<u32> {
        let fs = self.friends(u);
        if fs.is_empty() {
            None
        } else {
            Some(fs[rng.gen_range(0..fs.len())])
        }
    }

    /// Disjoint friend pairs covering as many users as possible — the
    /// paper's batches are "designed so that each transaction would find a
    /// coordination partner within the same batch".
    pub fn disjoint_friend_pairs(&self, limit: usize, seed: u64) -> Vec<(u32, u32)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.len() as u32;
        let mut used = vec![false; self.len()];
        let mut order: Vec<u32> = (0..n).collect();
        // Fisher-Yates for an unbiased deterministic order.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut pairs = Vec::new();
        for u in order {
            if pairs.len() >= limit {
                break;
            }
            if used[u as usize] {
                continue;
            }
            if let Some(v) = self.friends(u).iter().copied().find(|&v| !used[v as usize]) {
                used[u as usize] = true;
                used[v as usize] = true;
                pairs.push((u, v));
            }
        }
        pairs
    }

    /// Average degree (diagnostics; heavy-tail sanity checks in tests).
    pub fn avg_degree(&self) -> f64 {
        2.0 * self.edge_count as f64 / self.len() as f64
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(|a| a.len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = SocialGraph::slashdot_like(500, 42);
        let b = SocialGraph::slashdot_like(500, 42);
        assert_eq!(a.adj, b.adj);
        let c = SocialGraph::slashdot_like(500, 43);
        assert_ne!(a.adj, c.adj);
    }

    #[test]
    fn slashdot_like_degree_statistics() {
        let g = SocialGraph::slashdot_like(2000, 7);
        let avg = g.avg_degree();
        assert!((8.0..16.0).contains(&avg), "avg degree {avg}");
        // Heavy tail: max degree far above average.
        assert!(
            g.max_degree() as f64 > 4.0 * avg,
            "max {} vs avg {avg}",
            g.max_degree()
        );
    }

    #[test]
    fn adjacency_is_symmetric_and_deduped() {
        let g = SocialGraph::slashdot_like(300, 1);
        for u in 0..g.len() as u32 {
            for &v in g.friends(u) {
                assert!(g.are_friends(v, u), "{u}-{v} asymmetric");
                assert_ne!(u, v, "self loop");
            }
            let f = g.friends(u);
            let mut d = f.to_vec();
            d.dedup();
            assert_eq!(d.len(), f.len(), "duplicate edge at {u}");
        }
    }

    #[test]
    fn disjoint_pairs_are_disjoint_friends() {
        let g = SocialGraph::slashdot_like(400, 3);
        let pairs = g.disjoint_friend_pairs(100, 9);
        assert!(pairs.len() >= 50, "got {}", pairs.len());
        let mut seen = std::collections::HashSet::new();
        for (u, v) in &pairs {
            assert!(g.are_friends(*u, *v));
            assert!(seen.insert(*u), "{u} reused");
            assert!(seen.insert(*v), "{v} reused");
        }
    }

    #[test]
    fn random_friend_is_a_friend() {
        let g = SocialGraph::slashdot_like(100, 5);
        let mut rng = StdRng::seed_from_u64(11);
        for u in 0..100u32 {
            if let Some(v) = g.random_friend(u, &mut rng) {
                assert!(g.are_friends(u, v));
            }
        }
    }

    #[test]
    fn tiny_graphs_work() {
        let g = SocialGraph::preferential_attachment(2, 3, 0);
        assert_eq!(g.len(), 2);
        assert!(g.are_friends(0, 1));
    }
}
