//! # youtopia-workload
//!
//! Workload generation for the evaluation of *Entangled Transactions*
//! (§5.2): the synthetic social graph standing in for the Slashdot dataset,
//! the Appendix D travel schema and data, the six Figure 6(a) workloads
//! (`NoSocial`/`Social`/`Entangled` × `-T`/`-Q`), the pending-transaction
//! plans of Figure 6(b), the spoke-hub / cyclic coordination structures
//! of Figure 6(c), the read-mostly [`readmix`] mix the `readscale`
//! bench uses to measure the multi-version snapshot read path, the
//! point-access [`pointmix`] mix the `pointmix` bench uses to measure
//! the named secondary-index plans against full scans, the range-heavy
//! [`rangemix`] mix the `rangemix` bench uses to measure btree range
//! plans (next-key locking, composite keys, visibility-filtered
//! snapshot probes) against forced scans, the shard-locality
//! [`shardmix`] mix the `sharding` bench uses to measure per-shard
//! commit pipelines against the cross-shard commit tax, and the
//! deadlock-prone [`hotcycle`] mix the `hotcycle` bench uses to measure
//! global edge-chasing deadlock detection against the timeout backstop.
//!
//! Everything is seeded and deterministic, so bench results replay.

pub mod fig6a;
pub mod fig6bc;
pub mod hotcycle;
pub mod pointmix;
pub mod rangemix;
pub mod readmix;
pub mod shardmix;
pub mod social;
pub mod travel;

pub use fig6a::{entangled_program, generate, nosocial_program, social_program, Family};
pub use fig6bc::{
    cyclic_group, generate_structured, partnerless_program, pending_plan, spoke_hub_group,
    PendingPlan, Structure,
};
pub use hotcycle::{generate_hot_cycle, HOT_TABLES};
pub use pointmix::{
    generate_point_mix, point_index_script, point_reader, point_seed_script, point_writer,
};
pub use rangemix::{
    day_literal, generate_range_mix, range_booker, range_index_script, range_inserter,
    range_reader, range_seed_script, HORIZON_DAYS, WINDOW_DAYS,
};
pub use readmix::{generate_read_mix, read_mix_reader, read_mix_writer};
pub use shardmix::{generate_shard_mix, shard_index_script, SHARD_TABLES};
pub use social::SocialGraph;
pub use travel::{city, engine_config, scheduler_for, TravelData, TravelParams, WorkloadMode};
