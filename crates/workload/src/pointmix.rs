//! Point-access workload for the `pointmix` bench: every statement
//! touches exactly one `Reserve` row, selected by an equality predicate
//! on `uid`. With the named secondary index on `Reserve (uid)` installed
//! each statement is a point probe (table-IS/IX + key lock + one row
//! lock, `rows_scanned` O(1)); without it every statement scans the heap
//! under the table-S + IX write-scan protocol, so concurrent point
//! updates serialize on the table lock *and* pay O(table) per statement.
//! The ratio between the two runs is the headline number of
//! `BENCH_index.json`.

use crate::travel::TravelData;
use entangled_txn::Program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seed script: one reservation per user (`fid = uid % flights`), so
/// every point lookup hits exactly one row and the heap is big enough
/// that a scan per statement is visibly O(table).
pub fn point_seed_script(data: &TravelData) -> String {
    let flights = data.params.flights.max(1);
    let mut out = String::with_capacity(data.params.users * 32);
    for uid in 0..data.params.users {
        out.push_str(&format!(
            "INSERT INTO Reserve VALUES ({uid}, {});",
            uid % flights
        ));
    }
    out
}

/// DDL for the indexed arm of the comparison: named secondary indexes on
/// the columns the point statements probe. The no-index arm simply skips
/// this script — same data, same programs, scan plans only.
pub fn point_index_script() -> &'static str {
    "CREATE INDEX reserve_uid ON Reserve (uid);\
     CREATE INDEX user_uid ON User (uid) USING BTREE;"
}

/// A point reader: check one user's reservation and profile. Pure reads,
/// so with snapshot reads on it runs lock-free either way — the index
/// still turns each evaluation from a heap scan into a probe.
pub fn point_reader(uid: usize) -> Program {
    Program::parse(&format!(
        "BEGIN; \
         SELECT @fid FROM Reserve WHERE uid={uid}; \
         SELECT hometown FROM User WHERE uid={uid}; \
         COMMIT;"
    ))
    .expect("static workload template")
}

/// A point writer: rebook one user's reservation, then confirm it. The
/// UPDATE resolves its targets through the index (table-IX + key-X +
/// row-X) when one exists, or the table-S + IX write scan when not; the
/// trailing SELECT sits in a read-write transaction, so it exercises the
/// *locked* point-read path (table-IS + key-S + row-S), not the snapshot
/// path.
pub fn point_writer(uid: usize, fid: i64) -> Program {
    Program::parse(&format!(
        "BEGIN; \
         UPDATE Reserve SET fid={fid} WHERE uid={uid}; \
         SELECT fid FROM Reserve WHERE uid={uid}; \
         COMMIT;"
    ))
    .expect("static workload template")
}

/// Generate a point mix: `write_pct` percent [`point_writer`]s, the rest
/// [`point_reader`]s, uids round-robin over the user population so
/// concurrent writers mostly touch *different* rows (the workload the
/// two-level index protocol parallelizes and a table lock serializes).
/// Seeded and deterministic, like every generator in this crate.
pub fn generate_point_mix(
    data: &TravelData,
    count: usize,
    write_pct: u32,
    seed: u64,
) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed);
    let flights = data.params.flights.max(1) as i64;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let uid = i % data.params.users;
        if rng.gen_range(0..100u32) < write_pct {
            out.push(point_writer(uid, rng.gen_range(0..flights)));
        } else {
            out.push(point_reader(uid));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::social::SocialGraph;
    use crate::travel::TravelParams;
    use entangled_txn::EngineConfig;

    fn data() -> TravelData {
        let params = TravelParams {
            users: 48,
            cities: 4,
            flights: 60,
            seed: 11,
        };
        TravelData::generate(params, SocialGraph::slashdot_like(48, 11))
    }

    #[test]
    fn mix_ratio_and_read_only_split() {
        let d = data();
        let programs = generate_point_mix(&d, 200, 50, 7);
        assert_eq!(programs.len(), 200);
        let readers = programs.iter().filter(|p| p.is_read_only()).count();
        let writers = 200 - readers;
        assert!(
            (80..=120).contains(&writers),
            "~50% writers expected, got {writers}"
        );
    }

    #[test]
    fn mix_is_deterministic() {
        let d = data();
        let a: Vec<usize> = generate_point_mix(&d, 60, 50, 3)
            .iter()
            .map(|p| p.statements.len())
            .collect();
        let b: Vec<usize> = generate_point_mix(&d, 60, 50, 3)
            .iter()
            .map(|p| p.statements.len())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn seed_and_index_scripts_build_an_indexed_engine() {
        let d = data();
        let engine = d.build_engine(EngineConfig::default());
        engine.setup(&point_seed_script(&d)).expect("seed");
        engine.setup(point_index_script()).expect("index ddl");
        engine.with_db(|db| {
            let t = db.table("Reserve").unwrap();
            assert_eq!(t.len(), 48);
            let idx = t.named_indexes().get("reserve_uid").expect("index exists");
            assert_eq!(idx.probe(&youtopia_storage::Value::Int(7)).len(), 1);
        });
    }
}
