//! Range-heavy workload for the `rangemix` bench: a flight-schedule
//! dashboard that reads **date windows** (`day BETWEEN lo AND hi`, plus
//! composite `dest = c AND day >= lo AND day <= hi` windows) mixed with
//! point bookings that decrement seats. With the btree indexes of
//! [`range_index_script`] installed every window is a `RangeProbe` plan
//! — table-IS + next-key locks over the probed interval on the locked
//! path, a visibility-filtered live-index probe on the snapshot path —
//! touching O(matches) rows. Without them (the forced-scan ablation:
//! same data, same programs) every window scans the heap under table-S,
//! so concurrent bookings serialize behind the dashboards *and* each
//! window pays O(table). The ratio between the two runs is the headline
//! number of `BENCH_range.json`.

use crate::travel::{city, TravelData};
use entangled_txn::Program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use youtopia_storage::Value;

/// Days in the schedule horizon. Windows span [`WINDOW_DAYS`] of these,
/// so a window matches ~`len * WINDOW_DAYS / HORIZON_DAYS` rows — small
/// enough that the planner's selectivity gate (estimate ≤ len/2) always
/// picks the range probe when the index exists.
pub const HORIZON_DAYS: i32 = 64;

/// Width of each dashboard window, in days (inclusive endpoints).
pub const WINDOW_DAYS: i32 = 2;

/// First day of the schedule horizon, as days since the epoch. Any base
/// works; a round offset keeps the generated date literals readable.
pub const BASE_DAY: i32 = 19_000;

/// The date literal for day `BASE_DAY + offset`, in the `'YYYY-MM-DD'`
/// form the lexer types as `Value::Date`.
pub fn day_literal(offset: i32) -> String {
    format!("'{}'", Value::Date(BASE_DAY + offset))
}

/// Seed script: the `Sched` departure table, one row per (flight, day
/// slot) — `fid` rides along for point bookings, `day` spreads uniformly
/// over the horizon, `dest` cycles the city list so composite
/// `(dest, day)` windows have work to do.
pub fn range_seed_script(data: &TravelData) -> String {
    let cities = data.params.cities.max(1);
    let mut out = String::from("CREATE TABLE Sched (fid INT, day DATE, dest TEXT, seats INT);");
    for (i, (_, d, fid)) in data.flights.iter().enumerate() {
        let day = (i as i32 * 7 + 3) % HORIZON_DAYS;
        out.push_str(&format!(
            "INSERT INTO Sched VALUES ({fid}, {}, '{}', 100);",
            day_literal(day),
            city(*d % cities)
        ));
    }
    out
}

/// DDL for the indexed arm: a btree on the date column (single-column
/// range plans) and a composite btree on `(dest, day)` (`Value::Tuple`
/// keys; equality prefix + range tail plans). The forced-scan ablation
/// simply skips this script.
pub fn range_index_script() -> &'static str {
    "CREATE INDEX sched_day ON Sched (day) USING BTREE;\
     CREATE INDEX sched_dest_day ON Sched (dest, day) USING BTREE;"
}

/// A dashboard reader: one BETWEEN window over `day` and one composite
/// `(dest, day)` window. Pure reads, so with snapshot reads on it runs
/// lock-free — the windows are served by visibility-filtered probes of
/// the live btree (each one counts into `index_rebuilds_avoided`), or by
/// snapshot-copy scans in the ablation.
pub fn range_reader(lo_day: i32, dest: usize, cities: usize) -> Program {
    let lo = day_literal(lo_day);
    let hi = day_literal(lo_day + WINDOW_DAYS);
    Program::parse(&format!(
        "BEGIN; \
         SELECT fid AS @f FROM Sched WHERE day BETWEEN {lo} AND {hi}; \
         SELECT seats FROM Sched WHERE dest = '{}' AND day >= {lo} AND day <= {hi}; \
         COMMIT;",
        city(dest % cities.max(1))
    ))
    .expect("static workload template")
}

/// A booking writer: a range read **inside a read-write transaction**
/// (the locked next-key path — table-IS + S on every in-range key + the
/// successor), then a seat decrement over the same `(dest, day)` window.
/// With the composite btree the UPDATE is itself a range plan — X next-key
/// locks over a mostly-disjoint interval, so concurrent bookers overlap;
/// the forced-scan ablation resolves the same targets by write-scan under
/// table locks, serializing every booker behind every other.
pub fn range_booker(lo_day: i32, dest: usize, cities: usize) -> Program {
    let lo = day_literal(lo_day);
    let hi = day_literal(lo_day + WINDOW_DAYS);
    let dest = city(dest % cities.max(1));
    Program::parse(&format!(
        "BEGIN; \
         SELECT fid AS @scan FROM Sched WHERE day BETWEEN {lo} AND {hi}; \
         UPDATE Sched SET seats = seats - 1 \
          WHERE dest = '{dest}' AND day >= {lo} AND day <= {hi}; \
         COMMIT;"
    ))
    .expect("static workload template")
}

/// A schedule writer: posts a brand-new `(day, dest)` slot, exercising
/// the inserter half of the next-key protocol (X on the posted key,
/// IX on its btree successor) in the indexed arm.
pub fn range_inserter(fid: i64, day: i32, dest: usize, cities: usize) -> Program {
    Program::parse(&format!(
        "BEGIN; INSERT INTO Sched (fid, day, dest, seats) VALUES ({fid}, {}, '{}', 50); COMMIT;",
        day_literal(day),
        city(dest % cities.max(1))
    ))
    .expect("static workload template")
}

/// Generate a range mix: `write_pct` percent writers (bookers and, one in
/// four, fresh-slot inserters), the rest dashboard readers. Window start
/// days spread over the horizon so concurrent range locks mostly cover
/// *different* intervals. Seeded and deterministic.
pub fn generate_range_mix(
    data: &TravelData,
    count: usize,
    write_pct: u32,
    seed: u64,
) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cities = data.params.cities.max(1);
    let flights = data.params.flights.max(1) as i64;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let lo_day = rng.gen_range(0..(HORIZON_DAYS - WINDOW_DAYS));
        if rng.gen_range(0..100u32) < write_pct {
            if i % 4 == 0 {
                out.push(range_inserter(
                    flights + i as i64, // fresh fid, outside the seeded set
                    lo_day,
                    rng.gen_range(0..cities),
                    cities,
                ));
            } else {
                out.push(range_booker(lo_day, rng.gen_range(0..cities), cities));
            }
        } else {
            out.push(range_reader(lo_day, rng.gen_range(0..cities), cities));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::social::SocialGraph;
    use crate::travel::TravelParams;
    use entangled_txn::EngineConfig;
    use youtopia_storage::Value;

    fn data() -> TravelData {
        let params = TravelParams {
            users: 32,
            cities: 4,
            flights: 64,
            seed: 5,
        };
        TravelData::generate(params, SocialGraph::slashdot_like(32, 5))
    }

    #[test]
    fn day_literals_round_trip_as_typed_dates() {
        let lit = day_literal(10);
        assert_eq!(
            Value::parse_date(lit.trim_matches('\'')),
            Some(Value::Date(BASE_DAY + 10)),
            "{lit} must parse back to the day it encodes"
        );
    }

    #[test]
    fn mix_ratio_and_determinism() {
        let d = data();
        let programs = generate_range_mix(&d, 200, 30, 9);
        assert_eq!(programs.len(), 200);
        let readers = programs.iter().filter(|p| p.is_read_only()).count();
        assert!(
            (110..=170).contains(&readers),
            "~70% readers expected, got {readers}"
        );
        let again: Vec<usize> = generate_range_mix(&d, 200, 30, 9)
            .iter()
            .map(|p| p.statements.len())
            .collect();
        let first: Vec<usize> = programs.iter().map(|p| p.statements.len()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn seed_and_index_scripts_build_a_range_indexed_engine() {
        let d = data();
        let engine = d.build_engine(EngineConfig::default());
        engine.setup(&range_seed_script(&d)).expect("seed");
        engine.setup(range_index_script()).expect("index ddl");
        engine.with_db(|db| {
            let t = db.table("Sched").unwrap();
            assert_eq!(t.len(), 64);
            let day_ix = t.named_indexes().get("sched_day").expect("day btree");
            let all = day_ix
                .probe_range(&[], std::ops::Bound::Unbounded, std::ops::Bound::Unbounded)
                .expect("btree indexes serve ranges");
            assert_eq!(all.len(), 64, "every seeded slot posted");
            let dd = t.named_indexes().get("sched_dest_day").expect("composite");
            assert_eq!(dd.columns().len(), 2, "composite (dest, day)");
        });
    }
}
