//! The six workloads of Figure 6(a), straight from Appendix D:
//! `NoSocial`, `Social`, `Entangled`, each in transactional (`-T`) and
//! bare-query (`-Q`) form. Programs are identical between `-T` and `-Q`;
//! the mode changes the engine configuration (see
//! [`crate::travel::engine_config`]).

use crate::travel::{city, TravelData};
use entangled_txn::Program;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Which of the three workload families to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    NoSocial,
    Social,
    Entangled,
}

impl Family {
    pub const ALL: [Family; 3] = [Family::NoSocial, Family::Social, Family::Entangled];

    pub fn label(&self) -> &'static str {
        match self {
            Family::NoSocial => "NoSocial",
            Family::Social => "Social",
            Family::Entangled => "Entangled",
        }
    }
}

/// Appendix D workload 1: individual travel booking.
pub fn nosocial_program(uid: usize, dest: &str) -> Program {
    Program::parse(&format!(
        "BEGIN; \
         SELECT @uid, @hometown FROM User WHERE uid={uid}; \
         SELECT @fid FROM Flight WHERE source=@hometown AND destination='{dest}'; \
         INSERT INTO Reserve (uid, fid) VALUES (@uid, @fid); \
         COMMIT;"
    ))
    .expect("static workload template")
}

/// Appendix D workload 2: booking plus a same-hometown friend lookup.
pub fn social_program(uid: usize, dest: &str) -> Program {
    Program::parse(&format!(
        "BEGIN; \
         SELECT @uid, @hometown FROM User WHERE uid={uid}; \
         SELECT uid2 FROM Friends, User as u1, User as u2 \
         WHERE Friends.uid1=@uid AND Friends.uid2=u2.uid \
         AND u1.uid=@uid AND u1.hometown=u2.hometown LIMIT 1; \
         SELECT @fid FROM Flight WHERE source=@hometown AND destination='{dest}'; \
         INSERT INTO Reserve (uid, fid) VALUES (@uid, @fid); \
         COMMIT;"
    ))
    .expect("static workload template")
}

/// Appendix D workload 3: coordinate the booking with a specific friend
/// through an entangled query on the `Reserve` answer relation.
pub fn entangled_program(
    me: usize,
    partner: usize,
    my_dest: &str,
    partner_dest: &str,
    timeout: Duration,
) -> Program {
    Program::parse(&format!(
        "BEGIN TRANSACTION WITH TIMEOUT {} MS; \
         SELECT @hometown FROM User WHERE uid={me}; \
         SELECT {me} AS @uid, '{my_dest}' AS @destination INTO ANSWER Reserve \
         WHERE ({me}, {partner}) IN \
         (SELECT uid1, uid2 FROM Friends, User as u1, User as u2 \
          WHERE Friends.uid1={me} AND Friends.uid2={partner} \
          AND u1.uid={me} AND u2.uid={partner} \
          AND u1.hometown=u2.hometown) \
         AND ({partner}, '{partner_dest}') IN ANSWER Reserve CHOOSE 1; \
         SELECT @fid FROM Flight WHERE source=@hometown AND destination=@destination; \
         INSERT INTO Reserve (uid, fid) VALUES (@uid, @fid); \
         COMMIT;",
        timeout.as_millis()
    ))
    .expect("static workload template")
}

/// A full Figure 6(a) batch of `count` transactions for one family.
/// Entangled batches are built from disjoint friend pairs so that "each
/// transaction would find a coordination partner within the same batch"
/// (§5.2.2) — call [`TravelData::align_pair_hometowns`] with the **same
/// seed** first, so the generated pairs share hometowns.
pub fn generate(family: Family, data: &TravelData, count: usize, seed: u64) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    match family {
        Family::NoSocial | Family::Social => {
            for i in 0..count {
                let uid = i % data.params.users;
                let dest = city(data.reachable_destination(uid, &mut rng));
                out.push(match family {
                    Family::NoSocial => nosocial_program(uid, &dest),
                    Family::Social => social_program(uid, &dest),
                    Family::Entangled => unreachable!(),
                });
            }
        }
        Family::Entangled => {
            let pairs = data.graph.disjoint_friend_pairs(count / 2 + 1, seed);
            assert!(!pairs.is_empty(), "graph yielded no friend pairs");
            let mut i = 0;
            while out.len() + 2 <= count {
                let (a, b) = pairs[i % pairs.len()];
                let dest = city(data.common_destination(a as usize, b as usize, &mut rng));
                let timeout = Duration::from_secs(30);
                out.push(entangled_program(
                    a as usize, b as usize, &dest, &dest, timeout,
                ));
                out.push(entangled_program(
                    b as usize, a as usize, &dest, &dest, timeout,
                ));
                i += 1;
            }
        }
    }
    out
}

impl TravelData {
    /// Force both members of each pair to share a hometown (the paper's
    /// entangled workload coordinates same-hometown friends; random
    /// hometowns would make most pairs unanswerable).
    pub fn align_pair_hometowns(&mut self, seed: u64) {
        let pairs = self.graph.disjoint_friend_pairs(self.params.users, seed);
        for (a, b) in pairs {
            self.hometown[b as usize] = self.hometown[a as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::social::SocialGraph;
    use crate::travel::{engine_config, scheduler_for, TravelParams, WorkloadMode};
    use entangled_txn::CostModel;

    fn data() -> TravelData {
        let params = TravelParams {
            users: 80,
            cities: 4,
            flights: 120,
            seed: 5,
        };
        let mut d = TravelData::generate(params, SocialGraph::slashdot_like(80, 5));
        d.align_pair_hometowns(7);
        d
    }

    fn run(family: Family, count: usize) -> (usize, usize) {
        let d = data();
        let engine = d.build_engine(engine_config(
            WorkloadMode::Transactional,
            CostModel::ZERO,
            false,
        ));
        let mut sched = scheduler_for(engine, 4);
        for p in generate(family, &d, count, 7) {
            sched.submit(p);
        }
        let stats = sched.drain();
        (stats.committed, stats.failed)
    }

    #[test]
    fn nosocial_commits_all() {
        let (committed, failed) = run(Family::NoSocial, 40);
        assert_eq!(committed, 40);
        assert_eq!(failed, 0);
    }

    #[test]
    fn social_commits_all() {
        let (committed, failed) = run(Family::Social, 40);
        assert_eq!(committed, 40);
        assert_eq!(failed, 0);
    }

    #[test]
    fn entangled_pairs_commit_together() {
        let (committed, failed) = run(Family::Entangled, 40);
        assert_eq!(committed + failed, 40);
        assert!(committed >= 38, "committed only {committed}");
        assert_eq!(committed % 2, 0, "entangled txns commit in pairs");
    }

    #[test]
    fn reservations_reference_real_flights() {
        let d = data();
        let engine = d.build_engine(engine_config(
            WorkloadMode::Transactional,
            CostModel::ZERO,
            false,
        ));
        let mut sched = scheduler_for(engine, 1);
        for p in generate(Family::Entangled, &d, 20, 7) {
            sched.submit(p);
        }
        sched.drain();
        sched.engine.with_db(|db| {
            for row in db.canonical_rows("Reserve").unwrap() {
                let fid = row[1].clone();
                assert!(!fid.is_null(), "reservation with NULL flight: {row:?}");
                let hits = db.select_eq("Flight", &[("fid", fid)]).unwrap();
                assert_eq!(hits.len(), 1, "booked flight must exist");
            }
        });
    }

    #[test]
    fn query_only_mode_runs_same_programs() {
        let d = data();
        let engine = d.build_engine(engine_config(
            WorkloadMode::QueryOnly,
            CostModel::ZERO,
            false,
        ));
        let mut sched = scheduler_for(engine, 4);
        for p in generate(Family::Entangled, &d, 20, 7) {
            sched.submit(p);
        }
        let stats = sched.drain();
        assert!(stats.committed >= 18, "{stats:?}");
    }

    #[test]
    fn generator_is_deterministic() {
        let d = data();
        let a = generate(Family::Entangled, &d, 10, 3);
        let b = generate(Family::Entangled, &d, 10, 3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.statements, y.statements);
        }
    }
}
