//! Read-mostly workload for the `readscale` bench: a production-shaped
//! mix where most transactions are pure SELECTs (profile lookups, flight
//! searches, reservation checks) and a minority are the classical booking
//! writers of Appendix D.
//!
//! The readers' footprint deliberately overlaps the writers' write-hot
//! `Reserve` table: with snapshot reads off, every reader's table-S lock
//! on `Reserve` conflicts with the writers' IX locks (the classic
//! readers-block-writers-block-readers pile-up this workload exists to
//! measure); with snapshot reads on, readers touch no lock at all and the
//! mix scales with connections.

use crate::travel::{city, TravelData};
use entangled_txn::Program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A pure-read transaction: check the user's reservations, look up the
/// profile and friends, search flights out and back, re-check the
/// reservations (the repeatable-read shape of a booking dashboard). Six
/// SELECTs, no writes — eligible for the snapshot read path.
///
/// Under strict 2PL the *first* statement acquires the table-S lock on
/// `Reserve` and holds it to commit, so the reader excludes writers for
/// its whole lifetime; on the snapshot path it locks nothing.
pub fn read_mix_reader(uid: usize, dest: &str) -> Program {
    Program::parse(&format!(
        "BEGIN; \
         SELECT fid FROM Reserve WHERE uid={uid}; \
         SELECT @uid, @hometown FROM User WHERE uid={uid}; \
         SELECT uid2 FROM Friends WHERE uid1={uid} LIMIT 1; \
         SELECT @fid FROM Flight WHERE source=@hometown AND destination='{dest}'; \
         SELECT fid FROM Flight WHERE source='{dest}' AND destination=@hometown; \
         SELECT fid FROM Reserve WHERE uid={uid}; \
         COMMIT;"
    ))
    .expect("static workload template")
}

/// The booking writer of the mix: Appendix D's individual booking plus a
/// trailing confirm-read, so the `Reserve` IX/X locks stay held across
/// one more statement (as a real booking flow's confirmation step would).
pub fn read_mix_writer(uid: usize, dest: &str) -> Program {
    Program::parse(&format!(
        "BEGIN; \
         SELECT @uid, @hometown FROM User WHERE uid={uid}; \
         SELECT @fid FROM Flight WHERE source=@hometown AND destination='{dest}'; \
         INSERT INTO Reserve (uid, fid) VALUES (@uid, @fid); \
         SELECT fid FROM Reserve WHERE uid=@uid; \
         COMMIT;"
    ))
    .expect("static workload template")
}

/// Generate a read-mostly mix: `write_pct` percent of the transactions
/// are booking writers ([`read_mix_writer`]), the rest are
/// [`read_mix_reader`]s. Seeded and deterministic, like every generator
/// in this crate.
pub fn generate_read_mix(
    data: &TravelData,
    count: usize,
    write_pct: u32,
    seed: u64,
) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let uid = i % data.params.users;
        let dest = city(data.reachable_destination(uid, &mut rng));
        if rng.gen_range(0..100u32) < write_pct {
            out.push(read_mix_writer(uid, &dest));
        } else {
            out.push(read_mix_reader(uid, &dest));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::social::SocialGraph;
    use crate::travel::TravelParams;

    fn data() -> TravelData {
        let params = TravelParams {
            users: 40,
            cities: 4,
            flights: 60,
            seed: 9,
        };
        TravelData::generate(params, SocialGraph::slashdot_like(40, 9))
    }

    #[test]
    fn mix_ratio_and_read_only_split() {
        let d = data();
        let programs = generate_read_mix(&d, 200, 10, 9);
        assert_eq!(programs.len(), 200);
        let readers = programs.iter().filter(|p| p.is_read_only()).count();
        let writers = 200 - readers;
        assert!(
            (10..=35).contains(&writers),
            "~10% writers expected, got {writers}"
        );
        assert!(readers > 150);
    }

    #[test]
    fn mix_is_deterministic() {
        let d = data();
        let a: Vec<usize> = generate_read_mix(&d, 50, 20, 3)
            .iter()
            .map(|p| p.statements.len())
            .collect();
        let b: Vec<usize> = generate_read_mix(&d, 50, 20, 3)
            .iter()
            .map(|p| p.statements.len())
            .collect();
        assert_eq!(a, b);
    }
}
