//! The travel scenario of Appendix D: schema, deterministic data
//! generation, and the engine/scheduler configurations for the
//! transactional (`-T`) and non-transactional (`-Q`) workload variants of
//! §5.2.2.

use crate::social::SocialGraph;
use entangled_txn::{
    CostModel, EmptyAnswerPolicy, Engine, EngineConfig, IsolationMode, Scheduler, SchedulerConfig,
};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// City codes used as hometowns and destinations (three-letter strings
/// like the paper's 'FAT', 'CAT', 'PHF').
pub fn city(i: usize) -> String {
    let a = (b'A' + (i / 26 / 26 % 26) as u8) as char;
    let b = (b'A' + (i / 26 % 26) as u8) as char;
    let c = (b'A' + (i % 26) as u8) as char;
    format!("{a}{b}{c}")
}

/// Travel-scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct TravelParams {
    pub users: usize,
    pub cities: usize,
    /// Flights generated per ordered city pair that is connected.
    pub flights: usize,
    pub seed: u64,
}

impl Default for TravelParams {
    fn default() -> Self {
        TravelParams {
            users: 400,
            cities: 12,
            flights: 400,
            seed: 1,
        }
    }
}

/// The generated travel database, carried as a setup script plus the
/// deterministic assignments the workload generators need.
#[derive(Debug, Clone)]
pub struct TravelData {
    pub params: TravelParams,
    /// hometown city index per user.
    pub hometown: Vec<usize>,
    /// (source city, destination city, fid) triples.
    pub flights: Vec<(usize, usize, i64)>,
    pub graph: SocialGraph,
}

impl TravelData {
    /// Generate users (hometowns), a flight network and friendships.
    pub fn generate(params: TravelParams, graph: SocialGraph) -> TravelData {
        assert_eq!(
            graph.len(),
            params.users,
            "graph size must match user count"
        );
        let mut rng = StdRng::seed_from_u64(params.seed);
        let hometown: Vec<usize> = (0..params.users)
            .map(|_| rng.gen_range(0..params.cities))
            .collect();
        let mut flights = Vec::with_capacity(params.flights);
        for fid in 0..params.flights {
            let s = rng.gen_range(0..params.cities);
            let mut d = rng.gen_range(0..params.cities);
            if d == s {
                d = (d + 1) % params.cities;
            }
            flights.push((s, d, fid as i64));
        }
        TravelData {
            params,
            hometown,
            flights,
            graph,
        }
    }

    /// Appendix D schema + data as a setup script.
    pub fn setup_script(&self) -> String {
        let mut out = String::with_capacity(1 << 16);
        out.push_str(
            "CREATE TABLE User (uid INT, hometown TEXT);\
             CREATE TABLE Friends (uid1 INT, uid2 INT);\
             CREATE TABLE Flight (source TEXT, destination TEXT, fid INT);\
             CREATE TABLE Reserve (uid INT, fid INT);",
        );
        for (uid, h) in self.hometown.iter().enumerate() {
            out.push_str(&format!("INSERT INTO User VALUES ({uid}, '{}');", city(*h)));
        }
        for u in 0..self.graph.len() as u32 {
            for &v in self.graph.friends(u) {
                // Directed representation of the friendship relation.
                out.push_str(&format!("INSERT INTO Friends VALUES ({u}, {v});"));
            }
        }
        for (s, d, fid) in &self.flights {
            out.push_str(&format!(
                "INSERT INTO Flight VALUES ('{}', '{}', {fid});",
                city(*s),
                city(*d)
            ));
        }
        out
    }

    /// A destination reachable from `uid`'s hometown (deterministic pick),
    /// or an arbitrary city when the hometown has no outbound flights.
    pub fn reachable_destination(&self, uid: usize, rng: &mut StdRng) -> usize {
        let home = self.hometown[uid];
        let outs: Vec<usize> = self
            .flights
            .iter()
            .filter(|(s, _, _)| *s == home)
            .map(|(_, d, _)| *d)
            .collect();
        if outs.is_empty() {
            (home + 1) % self.params.cities
        } else {
            outs[rng.gen_range(0..outs.len())]
        }
    }

    /// A destination reachable from BOTH users' hometowns (for
    /// coordinating pairs); falls back to `reachable_destination`.
    pub fn common_destination(&self, a: usize, b: usize, rng: &mut StdRng) -> usize {
        let (ha, hb) = (self.hometown[a], self.hometown[b]);
        let outs_a: std::collections::HashSet<usize> = self
            .flights
            .iter()
            .filter(|(s, _, _)| *s == ha)
            .map(|(_, d, _)| *d)
            .collect();
        let common: Vec<usize> = self
            .flights
            .iter()
            .filter(|(s, d, _)| *s == hb && outs_a.contains(d))
            .map(|(_, d, _)| *d)
            .collect();
        if common.is_empty() {
            self.reachable_destination(a, rng)
        } else {
            common[rng.gen_range(0..common.len())]
        }
    }

    /// Build and populate an engine with this data.
    pub fn build_engine(&self, config: EngineConfig) -> Arc<Engine> {
        let engine = Arc::new(Engine::new(config));
        engine
            .setup(&self.setup_script())
            .expect("valid setup script");
        engine.create_index("User", &["uid"]).expect("index");
        engine.create_index("Friends", &["uid1"]).expect("index");
        engine
            .create_index("Friends", &["uid1", "uid2"])
            .expect("index");
        engine.create_index("Flight", &["source"]).expect("index");
        engine
    }
}

/// Transactional (`-T`) vs bare-query (`-Q`) execution, §5.2.2: the `-Q`
/// variants run "the same code without enclosing it within a transaction
/// block" — modelled as no commit cost, no group commit and immediate read
/// lock release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadMode {
    Transactional,
    QueryOnly,
}

/// Engine configuration for a workload mode with a given cost model.
pub fn engine_config(mode: WorkloadMode, cost: CostModel, record: bool) -> EngineConfig {
    let mut cfg = EngineConfig {
        cost,
        record_history: record,
        empty_answer: EmptyAnswerPolicy::Proceed,
        ..EngineConfig::default()
    };
    if mode == WorkloadMode::QueryOnly {
        cfg.isolation = IsolationMode::EarlyReadLockRelease;
        cfg.cost.per_commit = Duration::ZERO;
    }
    cfg
}

/// Scheduler for `connections` concurrent connections (manual runs).
pub fn scheduler_for(engine: Arc<Engine>, connections: usize) -> Scheduler {
    Scheduler::new(
        engine,
        SchedulerConfig {
            connections,
            ..SchedulerConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> TravelData {
        let params = TravelParams {
            users: 60,
            cities: 6,
            flights: 80,
            seed: 2,
        };
        TravelData::generate(params, SocialGraph::slashdot_like(60, 2))
    }

    #[test]
    fn city_codes() {
        assert_eq!(city(0), "AAA");
        assert_eq!(city(1), "AAB");
        assert_eq!(city(26), "ABA");
        assert_ne!(city(5), city(6));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = data();
        let b = data();
        assert_eq!(a.hometown, b.hometown);
        assert_eq!(a.flights, b.flights);
    }

    #[test]
    fn setup_script_builds_engine() {
        let d = data();
        let engine = d.build_engine(EngineConfig::default());
        engine.with_db(|db| {
            assert_eq!(db.table("User").unwrap().len(), 60);
            assert_eq!(db.table("Flight").unwrap().len(), 80);
            assert!(db.table("Friends").unwrap().len() > 100);
            assert_eq!(db.table("Reserve").unwrap().len(), 0);
        });
    }

    #[test]
    fn destinations_are_reachable() {
        let d = data();
        let mut rng = StdRng::seed_from_u64(3);
        for uid in 0..20 {
            let dest = d.reachable_destination(uid, &mut rng);
            assert!(dest < d.params.cities);
        }
        let dest = d.common_destination(0, 1, &mut rng);
        assert!(dest < d.params.cities);
    }

    #[test]
    fn query_only_mode_strips_transaction_overhead() {
        let cost = CostModel {
            per_commit: Duration::from_millis(5),
            ..CostModel::ZERO
        };
        let t = engine_config(WorkloadMode::Transactional, cost, false);
        let q = engine_config(WorkloadMode::QueryOnly, cost, false);
        assert_eq!(t.cost.per_commit, Duration::from_millis(5));
        assert_eq!(q.cost.per_commit, Duration::ZERO);
        assert_eq!(q.isolation, IsolationMode::EarlyReadLockRelease);
    }
}
