//! Deadlock-prone workload for the `hotcycle` bench: every transaction
//! updates one hot row on each of two tables that straddle shards, and
//! consecutive transactions take the pair in **opposite orders** — the
//! textbook recipe for a cross-shard waits-for cycle that no per-shard
//! detector can see. With the global edge-chasing detector enabled the
//! cycles resolve in a probe period via an explicit victim and a retry;
//! with it disabled every cycle stalls for the full lock timeout. The
//! gap between those two runs is what `BENCH_deadlock.json` measures.

use crate::travel::TravelData;
use entangled_txn::Program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use youtopia_storage::shard_of_table;

/// The tables the hot mix updates. All three are point-updatable (the
/// `Friends` insert table would not collide), and at 4 shards the
/// default partitioning rule places each on a distinct shard.
pub const HOT_TABLES: [&str; 3] = ["Reserve", "User", "Flight"];

/// One hot-row point update against `HOT_TABLES[ti]`. The updates are
/// self-assignments — the bench measures lock scheduling, not data
/// motion — but they take row-X locks like any real write.
fn hot_statement(ti: usize, row: usize) -> String {
    match HOT_TABLES[ti] {
        "Reserve" => format!("UPDATE Reserve SET fid=fid WHERE uid={row}"),
        "User" => format!("UPDATE User SET hometown=hometown WHERE uid={row}"),
        "Flight" => format!("UPDATE Flight SET fid=fid WHERE fid={row}"),
        other => unreachable!("unknown hot table {other}"),
    }
}

/// Hot-table pairs that straddle two different shards at `shards`. With
/// a single shard nothing straddles, so every pair qualifies — the
/// cycles still form, they are just visible to the shard-local check.
fn hot_pairs(shards: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for (a, ta) in HOT_TABLES.iter().enumerate() {
        for (b, tb) in HOT_TABLES.iter().enumerate().skip(a + 1) {
            if shards <= 1 || shard_of_table(ta, shards) != shard_of_table(tb, shards) {
                pairs.push((a, b));
            }
        }
    }
    pairs
}

/// Generate the hot-cycle mix: `count` two-table transactions over a
/// pool of `hot_rows` rows, alternating the acquisition order of each
/// table pair so opposite-order collisions (and therefore cross-shard
/// deadlocks) are common. Seeded and deterministic, like every
/// generator in this crate.
pub fn generate_hot_cycle(
    data: &TravelData,
    count: usize,
    hot_rows: usize,
    shards: usize,
    seed: u64,
) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = hot_rows
        .max(1)
        .min(data.params.users.max(1))
        .min(data.params.flights.max(1));
    let pairs = hot_pairs(shards);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let (a, b) = pairs[i % pairs.len()];
        let (ra, rb) = (rng.gen_range(0..pool), rng.gen_range(0..pool));
        let (s1, s2) = if i % 2 == 0 {
            (hot_statement(a, ra), hot_statement(b, rb))
        } else {
            // Opposite acquisition order: this is what closes cycles.
            (hot_statement(b, rb), hot_statement(a, ra))
        };
        let script = format!("BEGIN; {s1}; {s2}; COMMIT;");
        out.push(Program::parse(&script).expect("static workload template"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pointmix::point_seed_script;
    use crate::shardmix::shard_index_script;
    use crate::social::SocialGraph;
    use crate::travel::TravelParams;
    use entangled_txn::EngineConfig;

    fn data() -> TravelData {
        let params = TravelParams {
            users: 48,
            cities: 4,
            flights: 60,
            seed: 11,
        };
        TravelData::generate(params, SocialGraph::slashdot_like(48, 11))
    }

    #[test]
    fn hot_pairs_straddle_shards() {
        for shards in [2usize, 4] {
            for (a, b) in hot_pairs(shards) {
                assert_ne!(
                    shard_of_table(HOT_TABLES[a], shards),
                    shard_of_table(HOT_TABLES[b], shards),
                );
            }
        }
        assert_eq!(hot_pairs(1).len(), 3);
    }

    #[test]
    fn alternating_orders_and_determinism() {
        let d = data();
        let programs = generate_hot_cycle(&d, 20, 2, 4, 7);
        assert_eq!(programs.len(), 20);
        for p in &programs {
            assert_eq!(p.statements.len(), 2, "every transaction is a pair");
        }
        let texts: Vec<String> = programs
            .iter()
            .map(|p| format!("{:?}", p.statements))
            .collect();
        // Consecutive transactions on the same pair run opposite orders.
        assert_ne!(texts[0], texts[3]);
        let again: Vec<String> = generate_hot_cycle(&d, 20, 2, 4, 7)
            .iter()
            .map(|p| format!("{:?}", p.statements))
            .collect();
        assert_eq!(texts, again);
    }

    #[test]
    fn hot_cycle_drains_on_a_sharded_engine() {
        let d = data();
        let engine = d.build_engine(EngineConfig {
            shards: 4,
            ..EngineConfig::default()
        });
        engine.setup(&point_seed_script(&d)).expect("seed");
        engine.setup(shard_index_script()).expect("index ddl");
        let mut sched = crate::travel::scheduler_for(engine, 6);
        for p in generate_hot_cycle(&d, 36, 2, 4, 5) {
            sched.submit(p);
        }
        let stats = sched.drain();
        assert_eq!(
            stats.committed, 36,
            "every hot transaction commits (victims retry)"
        );
        assert_eq!(
            stats.timeouts, 0,
            "with detection on, no cycle waits out the timeout"
        );
    }
}
