//! Shard-locality workload for the `sharding` bench: a mix of
//! **shard-local** transactions (every statement on one table, hence one
//! shard) and **cross-shard** transactions (two tables whose shards
//! differ), over the travel schema.
//!
//! Locality is decided at generation time with the engine's own
//! partitioning rule ([`shard_of_table`]): the local mix cycles its home
//! table over [`SHARD_TABLES`] so offered load spreads across every
//! shard, and the cross mix picks table *pairs* that genuinely straddle
//! two shards at the configured shard count. A shard-local transaction
//! commits entirely through its own shard's lock manager, WAL segment
//! and commit pipeline; a cross-shard transaction pays the two-phase
//! entangled-commit record (`CrossPrepare` on every participant, synced,
//! then `CrossCommit`) — the tax `BENCH_sharding.json` measures.

use crate::travel::TravelData;
use entangled_txn::Program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use youtopia_storage::shard_of_table;

/// The travel tables the mix writes, in home-table rotation order. At 4
/// shards the default partitioning rule places each on a distinct shard;
/// at 2 shards they split two-and-two.
pub const SHARD_TABLES: [&str; 4] = ["Reserve", "User", "Flight", "Friends"];

/// Named indexes on the updated columns, so concurrent writers take
/// table-IX + key-X + row-X and overlap within a shard instead of
/// serializing on the table-S write-scan protocol — the bench measures
/// the commit pipelines, not lock-upgrade churn.
pub fn shard_index_script() -> &'static str {
    "CREATE INDEX reserve_uid ON Reserve (uid);\
     CREATE INDEX user_uid ON User (uid) USING BTREE;\
     CREATE INDEX flight_fid ON Flight (fid);"
}

/// One single-table write statement against `SHARD_TABLES[ti]`,
/// point-targeted so concurrent transactions mostly touch different rows.
fn table_statement(ti: usize, i: usize, users: usize, flights: i64, rng: &mut StdRng) -> String {
    let uid = i % users;
    match SHARD_TABLES[ti] {
        "Reserve" => format!(
            "UPDATE Reserve SET fid={} WHERE uid={uid}",
            rng.gen_range(0..flights)
        ),
        "User" => format!("UPDATE User SET hometown=hometown WHERE uid={uid}"),
        "Flight" => format!(
            "UPDATE Flight SET fid=fid WHERE fid={}",
            rng.gen_range(0..flights)
        ),
        "Friends" => format!(
            "INSERT INTO Friends VALUES ({uid}, {})",
            rng.gen_range(0..users)
        ),
        other => unreachable!("unknown shard table {other}"),
    }
}

/// Table-index pairs that straddle two different shards at `shards`
/// (generation-time routing). With a single shard no pair straddles, so
/// every pair qualifies — the "cross" transactions still exist, they are
/// just single-shard commits there (the comparison baseline).
fn cross_pairs(shards: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for (a, ta) in SHARD_TABLES.iter().enumerate() {
        for (b, tb) in SHARD_TABLES.iter().enumerate().skip(a + 1) {
            if shards <= 1 || shard_of_table(ta, shards) != shard_of_table(tb, shards) {
                pairs.push((a, b));
            }
        }
    }
    pairs
}

/// Generate the shard mix: `cross_pct` percent two-table transactions
/// whose tables straddle shards (at the given shard count), the rest
/// single-table shard-local transactions cycling their home table over
/// [`SHARD_TABLES`]. Seeded and deterministic, like every generator in
/// this crate.
pub fn generate_shard_mix(
    data: &TravelData,
    count: usize,
    cross_pct: u32,
    shards: usize,
    seed: u64,
) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed);
    let users = data.params.users.max(1);
    let flights = data.params.flights.max(1) as i64;
    let pairs = cross_pairs(shards);
    let mut local_cursor = 0usize;
    let mut pair_cursor = 0usize;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let script = if rng.gen_range(0..100u32) < cross_pct {
            let (a, b) = pairs[pair_cursor % pairs.len()];
            pair_cursor += 1;
            let s1 = table_statement(a, i, users, flights, &mut rng);
            let s2 = table_statement(b, i, users, flights, &mut rng);
            format!("BEGIN; {s1}; {s2}; COMMIT;")
        } else {
            let t = local_cursor % SHARD_TABLES.len();
            local_cursor += 1;
            let s = table_statement(t, i, users, flights, &mut rng);
            format!("BEGIN; {s}; COMMIT;")
        };
        out.push(Program::parse(&script).expect("static workload template"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pointmix::point_seed_script;
    use crate::social::SocialGraph;
    use crate::travel::TravelParams;
    use entangled_txn::EngineConfig;

    fn data() -> TravelData {
        let params = TravelParams {
            users: 48,
            cities: 4,
            flights: 60,
            seed: 11,
        };
        TravelData::generate(params, SocialGraph::slashdot_like(48, 11))
    }

    #[test]
    fn tables_spread_over_four_shards() {
        let shards: std::collections::BTreeSet<usize> =
            SHARD_TABLES.iter().map(|t| shard_of_table(t, 4)).collect();
        assert_eq!(shards.len(), 4, "each travel table gets its own shard");
    }

    #[test]
    fn cross_pairs_straddle_shards() {
        for shards in [2usize, 4] {
            let pairs = cross_pairs(shards);
            assert!(!pairs.is_empty());
            for (a, b) in pairs {
                assert_ne!(
                    shard_of_table(SHARD_TABLES[a], shards),
                    shard_of_table(SHARD_TABLES[b], shards),
                    "pair ({}, {}) must straddle at {shards} shards",
                    SHARD_TABLES[a],
                    SHARD_TABLES[b]
                );
            }
        }
        // Single shard: no pair straddles, all pairs qualify as baseline.
        assert_eq!(cross_pairs(1).len(), 6);
    }

    #[test]
    fn mix_ratio_and_determinism() {
        let d = data();
        let programs = generate_shard_mix(&d, 200, 50, 4, 7);
        assert_eq!(programs.len(), 200);
        let two_table = programs.iter().filter(|p| p.statements.len() > 1).count();
        assert!(
            (80..=120).contains(&two_table),
            "~50% cross transactions expected, got {two_table}"
        );
        let a: Vec<usize> = generate_shard_mix(&d, 60, 50, 4, 3)
            .iter()
            .map(|p| p.statements.len())
            .collect();
        let b: Vec<usize> = generate_shard_mix(&d, 60, 50, 4, 3)
            .iter()
            .map(|p| p.statements.len())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn mix_runs_on_a_sharded_engine() {
        let d = data();
        let engine = d.build_engine(EngineConfig {
            shards: 4,
            ..EngineConfig::default()
        });
        engine.setup(&point_seed_script(&d)).expect("seed");
        engine.setup(shard_index_script()).expect("index ddl");
        let mut sched = crate::travel::scheduler_for(engine.clone(), 4);
        for p in generate_shard_mix(&d, 40, 50, 4, 5) {
            sched.submit(p);
        }
        let stats = sched.drain();
        assert_eq!(stats.committed, 40, "every mixed transaction commits");
        assert!(
            stats.cross_shard_commits > 0,
            "cross transactions drove the two-phase path"
        );
        assert!(stats.cross_shard_prepares >= 2 * stats.cross_shard_commits);
        // A purely local mix never pays a prepare.
        let engine = d.build_engine(EngineConfig {
            shards: 4,
            ..EngineConfig::default()
        });
        engine.setup(&point_seed_script(&d)).expect("seed");
        engine.setup(shard_index_script()).expect("index ddl");
        let mut sched = crate::travel::scheduler_for(engine, 4);
        for p in generate_shard_mix(&d, 40, 0, 4, 5) {
            sched.submit(p);
        }
        let stats = sched.drain();
        assert_eq!(stats.committed, 40);
        assert_eq!(stats.cross_shard_commits, 0);
        assert_eq!(stats.cross_shard_prepares, 0);
    }
}
