//! Workload builders for Figure 6(b) (pending transactions) and
//! Figure 6(c) (entanglement complexity: spoke-hub and cyclic structures).

use crate::travel::{city, TravelData};
use entangled_txn::Program;
use std::time::Duration;

// ---------------------------------------------------------------------
// Figure 6(b): pending transactions
// ---------------------------------------------------------------------

/// An entangled transaction whose partner never arrives: its query
/// pattern names a user id that no transaction ever contributes, so every
/// evaluation ends in `NoPartner` and the transaction returns to the
/// dormant pool — a *pending* transaction in the paper's sense.
pub fn partnerless_program(me: usize, ghost: usize, dest: &str, timeout: Duration) -> Program {
    Program::parse(&format!(
        "BEGIN TRANSACTION WITH TIMEOUT {} MS; \
         SELECT {me} AS @uid INTO ANSWER Reserve \
         WHERE ({me}) IN (SELECT uid FROM User WHERE uid={me}) \
         AND ({ghost}, '{dest}') IN ANSWER Reserve CHOOSE 1; \
         INSERT INTO Reserve (uid, fid) VALUES (@uid, 0); \
         COMMIT;",
        timeout.as_millis()
    ))
    .expect("static workload template")
}

/// A Figure 6(b) experiment plan: `pairs` coordinating transactions (as
/// per-run batches of `f` arrivals driven by the caller) plus `p`
/// partner-less transactions that stay pending across every run.
#[derive(Debug)]
pub struct PendingPlan {
    /// Long-lived pending transactions (submit once, first).
    pub pending: Vec<Program>,
    /// Coordinating transactions in submission order (pairs adjacent).
    pub paired: Vec<Program>,
}

/// Build the plan. Ghost partner ids start beyond the user range so they
/// can never be satisfied.
pub fn pending_plan(data: &TravelData, total_paired: usize, p: usize, seed: u64) -> PendingPlan {
    let users = data.params.users;
    let long = Duration::from_secs(3600);
    let pending = (0..p)
        .map(|i| partnerless_program(i % users, users + 1 + i, &city(0), long))
        .collect();
    let paired = crate::fig6a::generate(crate::fig6a::Family::Entangled, data, total_paired, seed);
    PendingPlan { pending, paired }
}

// ---------------------------------------------------------------------
// Figure 6(c): entanglement complexity
// ---------------------------------------------------------------------

/// Coordination structure (§5.2.2, "Entanglement Complexity").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Structure {
    /// One hub transaction with `k-1` entangled queries, each entangling
    /// with a different spoke on its own answer relation.
    SpokeHub,
    /// `k` transactions in a cyclic dependency on one shared answer
    /// relation: i requires i+1's tuple (mod k) — the whole set must be
    /// answered as one coordinating set.
    Cyclic,
}

impl Structure {
    pub fn label(&self) -> &'static str {
        match self {
            Structure::SpokeHub => "Spoke-hub",
            Structure::Cyclic => "Cycle",
        }
    }
}

fn flight_body(dest: &str) -> String {
    format!("fid IN (SELECT fid FROM Flight WHERE destination='{dest}')")
}

/// One spoke-hub group of coordinating-set size `k` (hub + k−1 spokes).
/// `gid` namespaces the answer relations so groups stay independent.
pub fn spoke_hub_group(gid: usize, k: usize, dest: &str, timeout: Duration) -> Vec<Program> {
    assert!(k >= 2);
    let mut out = Vec::with_capacity(k);
    // Hub: one entangled query per spoke, then a booking.
    let mut hub = format!(
        "BEGIN TRANSACTION WITH TIMEOUT {} MS; ",
        timeout.as_millis()
    );
    for s in 1..k {
        hub.push_str(&format!(
            "SELECT 'hub{gid}', fid AS @fid{s} INTO ANSWER Spoke{gid}x{s} \
             WHERE {body} AND ('spoke{gid}x{s}', fid) IN ANSWER Spoke{gid}x{s} CHOOSE 1; ",
            body = flight_body(dest),
        ));
    }
    hub.push_str(&format!(
        "INSERT INTO Reserve (uid, fid) VALUES ({gid}, @fid1); COMMIT;"
    ));
    out.push(Program::parse(&hub).expect("static template"));
    // Spokes: one entangled query each.
    for s in 1..k {
        let spoke = format!(
            "BEGIN TRANSACTION WITH TIMEOUT {} MS; \
             SELECT 'spoke{gid}x{s}', fid AS @fid INTO ANSWER Spoke{gid}x{s} \
             WHERE {body} AND ('hub{gid}', fid) IN ANSWER Spoke{gid}x{s} CHOOSE 1; \
             INSERT INTO Reserve (uid, fid) VALUES ({uid}, @fid); COMMIT;",
            timeout.as_millis(),
            body = flight_body(dest),
            uid = gid * 100 + s,
        );
        out.push(Program::parse(&spoke).expect("static template"));
    }
    out
}

/// One cyclic group of size `k` on a shared answer relation.
pub fn cyclic_group(gid: usize, k: usize, dest: &str, timeout: Duration) -> Vec<Program> {
    assert!(k >= 2);
    (0..k)
        .map(|i| {
            let next = (i + 1) % k;
            Program::parse(&format!(
                "BEGIN TRANSACTION WITH TIMEOUT {} MS; \
                 SELECT 'm{gid}x{i}', fid AS @fid INTO ANSWER Cyc{gid} \
                 WHERE {body} AND ('m{gid}x{next}', fid) IN ANSWER Cyc{gid} CHOOSE 1; \
                 INSERT INTO Reserve (uid, fid) VALUES ({uid}, @fid); COMMIT;",
                timeout.as_millis(),
                body = flight_body(dest),
                uid = gid * 100 + i,
            ))
            .expect("static template")
        })
        .collect()
}

/// Generate `groups` coordination groups of size `k` with the given
/// structure, destinations rotating over the data's cities.
pub fn generate_structured(
    structure: Structure,
    data: &TravelData,
    groups: usize,
    k: usize,
    timeout: Duration,
) -> Vec<Program> {
    let mut out = Vec::with_capacity(groups * k);
    for g in 0..groups {
        // Pick a destination that exists in the flight table.
        let dest = city(data.flights[g % data.flights.len()].1);
        let batch = match structure {
            Structure::SpokeHub => spoke_hub_group(g, k, &dest, timeout),
            Structure::Cyclic => cyclic_group(g, k, &dest, timeout),
        };
        out.extend(batch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::social::SocialGraph;
    use crate::travel::{engine_config, scheduler_for, TravelParams, WorkloadMode};
    use entangled_txn::CostModel;

    fn data() -> TravelData {
        let params = TravelParams {
            users: 40,
            cities: 4,
            flights: 60,
            seed: 8,
        };
        TravelData::generate(params, SocialGraph::slashdot_like(40, 8))
    }

    fn run_all(programs: Vec<Program>, connections: usize) -> entangled_txn::Stats {
        let d = data();
        let engine = d.build_engine(engine_config(
            WorkloadMode::Transactional,
            CostModel::ZERO,
            false,
        ));
        let mut sched = scheduler_for(engine, connections);
        for p in programs {
            sched.submit(p);
        }
        sched.drain()
    }

    #[test]
    fn partnerless_transactions_stay_pending() {
        let d = data();
        let plan = pending_plan(&d, 0, 5, 1);
        assert_eq!(plan.pending.len(), 5);
        let engine = d.build_engine(engine_config(
            WorkloadMode::Transactional,
            CostModel::ZERO,
            false,
        ));
        let mut sched = scheduler_for(engine, 2);
        for p in plan.pending {
            sched.submit(p);
        }
        let r = sched.run_once();
        assert_eq!(r.committed, 0);
        assert_eq!(r.returned_to_pool, 5, "{r:?}");
        assert_eq!(sched.pool_len(), 5);
    }

    #[test]
    fn spoke_hub_group_commits_fully() {
        for k in [2usize, 4] {
            let d = data();
            let progs = spoke_hub_group(0, k, &city(d.flights[0].1), Duration::from_secs(20));
            assert_eq!(progs.len(), k);
            assert_eq!(
                progs[0].entangled_query_count(),
                k - 1,
                "hub has k-1 queries"
            );
            let stats = run_all(progs, 2);
            assert_eq!(stats.committed, k, "k={k}");
            assert_eq!(stats.failed, 0);
        }
    }

    #[test]
    fn cyclic_group_commits_fully() {
        for k in [2usize, 3, 5] {
            let stats = run_all(
                cyclic_group(1, k, &city(data().flights[0].1), Duration::from_secs(20)),
                2,
            );
            assert_eq!(stats.committed, k, "k={k}");
            assert_eq!(stats.failed, 0);
        }
    }

    #[test]
    fn structured_batches_scale() {
        let d = data();
        for structure in [Structure::SpokeHub, Structure::Cyclic] {
            let progs = generate_structured(structure, &d, 3, 3, Duration::from_secs(20));
            assert_eq!(progs.len(), 9);
            let stats = run_all(progs, 4);
            assert_eq!(stats.committed, 9, "{}", structure.label());
        }
    }

    #[test]
    fn pending_plan_mixes_pairs_and_pending() {
        let mut d = data();
        d.align_pair_hometowns(2);
        let plan = pending_plan(&d, 8, 3, 2);
        assert_eq!(plan.paired.len(), 8);
        assert_eq!(plan.pending.len(), 3);
        let engine = d.build_engine(engine_config(
            WorkloadMode::Transactional,
            CostModel::ZERO,
            false,
        ));
        let mut sched = scheduler_for(engine, 2);
        for p in plan.pending {
            sched.submit(p);
        }
        for p in plan.paired {
            sched.submit(p);
        }
        let r = sched.run_once();
        assert_eq!(r.committed, 8, "{r:?}");
        assert_eq!(sched.pool_len(), 3, "pending remain pooled");
    }
}
