//! Property test for Theorem 3.6: **every entangled-isolated schedule is
//! oracle-serializable** — checked executably over thousands of randomly
//! generated valid schedules and several starting databases.

use proptest::prelude::*;
use youtopia_isolation::{
    check_oracle_serializable, is_entangled_isolated, random_schedule, Db, GenConfig, Obj,
};

fn db_variant(variant: u8, objs: u32) -> Db {
    (0..objs)
        .map(|i| (Obj(i), (variant as i64) * 100 + i as i64 * 7 + 1))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Theorem 3.6 on small configurations.
    #[test]
    fn isolated_implies_oracle_serializable(
        seed in 0u64..1_000_000,
        txs in 2u32..5,
        objs in 2u32..5,
        steps in 2u32..6,
        db_variant_id in 0u8..3,
    ) {
        let cfg = GenConfig {
            txs,
            objs,
            steps_per_tx: steps,
            entangle_prob: 0.35,
            abort_prob: 0.25,
            seed,
        };
        let s = random_schedule(&cfg);
        s.validate().expect("generator produces valid schedules");
        if is_entangled_isolated(&s) {
            let db = db_variant(db_variant_id, objs);
            if let Err(v) = check_oracle_serializable(&s, &db) {
                panic!("THEOREM 3.6 VIOLATED on isolated schedule:\n  {s}\n  {v}");
            }
        }
    }

    /// The serialization order must be consistent with the conflict graph
    /// (the paper's closing remark in §3.3.2).
    #[test]
    fn witness_order_contains_exactly_committed_txs(
        seed in 0u64..100_000,
    ) {
        let cfg = GenConfig { seed, ..GenConfig::default() };
        let s = random_schedule(&cfg);
        if is_entangled_isolated(&s) {
            let db = db_variant(0, cfg.objs);
            let w = check_oracle_serializable(&s, &db).expect("theorem");
            let committed = s.committed();
            prop_assert_eq!(w.order.len(), committed.len());
            for t in &w.order {
                prop_assert!(committed.contains(t));
            }
        }
    }
}

/// Deterministic census: the generator must exercise both isolated and
/// non-isolated schedules, otherwise the property above is vacuous.
#[test]
fn generator_census_covers_both_classes() {
    let mut isolated = 0usize;
    let mut anomalous = 0usize;
    for seed in 0..400 {
        let cfg = GenConfig {
            seed,
            ..GenConfig::default()
        };
        let s = random_schedule(&cfg);
        if is_entangled_isolated(&s) {
            isolated += 1;
        } else {
            anomalous += 1;
        }
    }
    assert!(isolated > 40, "too few isolated schedules: {isolated}");
    assert!(anomalous > 40, "too few anomalous schedules: {anomalous}");
}
