//! Conflict graphs and the anomaly-based definition of entangled isolation
//! (C.2.2): Requirements C.2 (acyclic conflict graph), C.3 (no
//! read-from-aborted) and C.4 (no widowed transactions).
//!
//! Run these checks on *expanded* schedules (quasi-reads explicit) — that is
//! what makes unrepeatable quasi-reads fall out of the ordinary conflict
//! cycle check, exactly as the paper argues.

use crate::schedule::{Obj, Op, Schedule, Tx};
use std::collections::{BTreeMap, BTreeSet};

/// The conflict graph over committed transactions.
#[derive(Debug, Clone, Default)]
pub struct ConflictGraph {
    /// Adjacency: edge `a → b` when an op of `a` precedes and conflicts
    /// with an op of `b`.
    pub edges: BTreeMap<Tx, BTreeSet<Tx>>,
    pub nodes: BTreeSet<Tx>,
}

impl ConflictGraph {
    /// Build from a schedule (committed transactions only, per C.2.1:
    /// "the graph is defined only for those transactions that commit").
    pub fn build(s: &Schedule) -> ConflictGraph {
        let committed = s.committed();
        let mut g = ConflictGraph {
            edges: BTreeMap::new(),
            nodes: committed.iter().copied().collect(),
        };
        // Pairwise scan over (object-touching) ops. Snapshot reads are
        // *not* conflict ops: they take no locks and observe a committed
        // prefix rather than the state at their schedule position, so
        // ordering them against writers by position would manufacture
        // edges that have no counterpart in any execution. Their
        // consistency obligation is checked separately
        // (`crate::oracle::check_snapshot_serializable`).
        let touching: Vec<(usize, Tx, Obj, bool)> = s
            .ops
            .iter()
            .enumerate()
            .filter_map(|(i, op)| {
                if matches!(op, Op::SnapshotRead { .. } | Op::SnapshotPin { .. }) {
                    return None;
                }
                let tx = op.tx()?;
                let obj = op.obj()?;
                let is_write = matches!(op, Op::Write { .. });
                Some((i, tx, obj, is_write))
            })
            .collect();
        for (a_idx, (_, ta, oa, wa)) in touching.iter().enumerate() {
            for (_, tb, ob, wb) in touching[a_idx + 1..].iter() {
                if ta == tb || !oa.overlaps(ob) {
                    continue;
                }
                if !(*wa || *wb) {
                    continue;
                }
                if committed.contains(ta) && committed.contains(tb) {
                    g.edges.entry(*ta).or_default().insert(*tb);
                }
            }
        }
        g
    }

    /// Find a cycle, if any (returns the transactions on it).
    pub fn find_cycle(&self) -> Option<Vec<Tx>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: BTreeMap<Tx, Color> =
            self.nodes.iter().map(|&t| (t, Color::White)).collect();
        let mut stack_path: Vec<Tx> = Vec::new();

        fn dfs(
            n: Tx,
            g: &ConflictGraph,
            color: &mut BTreeMap<Tx, Color>,
            path: &mut Vec<Tx>,
        ) -> Option<Vec<Tx>> {
            color.insert(n, Color::Gray);
            path.push(n);
            if let Some(next) = g.edges.get(&n) {
                for &m in next {
                    match color.get(&m).copied().unwrap_or(Color::White) {
                        Color::Gray => {
                            // Cycle: slice of path from m to end.
                            let start = path.iter().position(|&t| t == m).expect("on path");
                            return Some(path[start..].to_vec());
                        }
                        Color::White => {
                            if let Some(c) = dfs(m, g, color, path) {
                                return Some(c);
                            }
                        }
                        Color::Black => {}
                    }
                }
            }
            path.pop();
            color.insert(n, Color::Black);
            None
        }

        for &n in &self.nodes {
            if color[&n] == Color::White {
                if let Some(c) = dfs(n, self, &mut color, &mut stack_path) {
                    return Some(c);
                }
                stack_path.clear();
            }
        }
        None
    }

    /// A topological order of the committed transactions (the serialization
    /// order Theorem 3.6 uses); `None` if cyclic.
    pub fn topological_order(&self) -> Option<Vec<Tx>> {
        let mut indeg: BTreeMap<Tx, usize> = self.nodes.iter().map(|&t| (t, 0)).collect();
        for (_, outs) in self.edges.iter() {
            for m in outs {
                *indeg.entry(*m).or_default() += 1;
            }
        }
        // BTreeMap keeps this deterministic (smallest tx first among ready).
        let mut ready: Vec<Tx> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&t, _)| t)
            .collect();
        let mut out = Vec::with_capacity(self.nodes.len());
        while let Some(t) = ready.first().copied() {
            ready.remove(0);
            out.push(t);
            if let Some(next) = self.edges.get(&t) {
                for &m in next {
                    let d = indeg.get_mut(&m).expect("node present");
                    *d -= 1;
                    if *d == 0 {
                        ready.push(m);
                        ready.sort_unstable();
                    }
                }
            }
        }
        (out.len() == self.nodes.len()).then_some(out)
    }
}

/// A detected isolation anomaly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anomaly {
    /// Requirement C.2 violated: the transactions on the cycle.
    ConflictCycle(Vec<Tx>),
    /// Requirement C.3 violated: committed `reader` read object `obj`
    /// after aborted `writer` wrote it.
    ReadFromAborted { writer: Tx, reader: Tx, obj: Obj },
    /// Requirement C.4 violated: `aborted` and `committed` entangled
    /// together (operation `entangle_id`) yet took different outcomes.
    WidowedTransaction {
        entangle_id: u32,
        aborted: Tx,
        committed: Tx,
    },
}

/// Run all three requirement checks on an **expanded** schedule.
pub fn find_anomalies(s: &Schedule) -> Vec<Anomaly> {
    let mut out = Vec::new();
    let committed = s.committed();
    let aborted = s.aborted();

    // C.2: conflict-graph cycles (covers classical anomalies and
    // unrepeatable quasi-reads once quasi-reads are explicit).
    if let Some(cycle) = ConflictGraph::build(s).find_cycle() {
        out.push(Anomaly::ConflictCycle(cycle));
    }

    // C.3: Wi(x) … Rj(x) with i aborted, j committed.
    for (i, op) in s.ops.iter().enumerate() {
        let Op::Write { tx: wtx, obj } = op else {
            continue;
        };
        if !aborted.contains(wtx) {
            continue;
        }
        for later in &s.ops[i + 1..] {
            // Snapshot reads are exempt by construction: versions are
            // installed only at commit, so a snapshot can never return an
            // aborted transaction's write no matter where the read sits.
            if matches!(later, Op::SnapshotRead { .. }) {
                continue;
            }
            if later.is_read() && later.obj().is_some_and(|o| o.overlaps(obj)) {
                let rtx = later.tx().expect("reads have a tx");
                if rtx != *wtx && committed.contains(&rtx) {
                    let a = Anomaly::ReadFromAborted {
                        writer: *wtx,
                        reader: rtx,
                        obj: *obj,
                    };
                    if !out.contains(&a) {
                        out.push(a);
                    }
                }
            }
        }
    }

    // C.4: an entangle op whose participants split between commit & abort.
    for (id, txs) in s.entanglements() {
        for &a in txs.iter().filter(|t| aborted.contains(t)) {
            for &c in txs.iter().filter(|t| committed.contains(t)) {
                out.push(Anomaly::WidowedTransaction {
                    entangle_id: id,
                    aborted: a,
                    committed: c,
                });
            }
        }
    }

    out
}

/// Definition C.5: a schedule is entangled-isolated iff it satisfies
/// Requirements C.2, C.3 and C.4. Expects a *raw* schedule; quasi-reads are
/// expanded internally.
pub fn is_entangled_isolated(s: &Schedule) -> bool {
    find_anomalies(&s.expand_quasi_reads()).is_empty()
}

/// Relaxed isolation levels (§3.3.1: "it is possible to relax this
/// definition to admit lower isolation levels by permitting a specific
/// subset of the above anomalies to occur").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsolationLevel {
    /// Permit widowed transactions (drop Requirement C.4 / group commit).
    pub allow_widows: bool,
    /// Permit conflict cycles that involve at least one quasi-read (drop
    /// the unrepeatable-quasi-read half of Requirement C.2).
    pub allow_unrepeatable_quasi_reads: bool,
}

impl IsolationLevel {
    /// Full entangled isolation (Definition C.5).
    pub const FULL: IsolationLevel = IsolationLevel {
        allow_widows: false,
        allow_unrepeatable_quasi_reads: false,
    };

    /// Does this level tolerate the given anomaly? (Used by tests and the
    /// engine's anomaly auditor; cycle tolerance is approximated by
    /// whether quasi-reads participate, which is the distinguishing
    /// feature of the entangled-only anomaly.)
    pub fn tolerates(&self, a: &Anomaly, s: &Schedule) -> bool {
        match a {
            Anomaly::WidowedTransaction { .. } => self.allow_widows,
            Anomaly::ConflictCycle(txs) if self.allow_unrepeatable_quasi_reads => {
                // Tolerated only if some quasi-read by a cycle member
                // exists (i.e. the cycle plausibly stems from entangled
                // information flow rather than a classical anomaly).
                s.ops
                    .iter()
                    .any(|op| matches!(op, Op::QuasiRead { tx, .. } if txs.contains(tx)))
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> Tx {
        Tx(n)
    }
    fn o(n: u32) -> Obj {
        Obj(n)
    }

    /// The C.1 example: isolated.
    fn example() -> Schedule {
        Schedule::new(vec![
            Op::GroundRead {
                tx: t(1),
                obj: o(0),
            },
            Op::GroundRead {
                tx: t(2),
                obj: o(1),
            },
            Op::Read {
                tx: t(3),
                obj: o(2),
            },
            Op::Entangle {
                id: 1,
                txs: vec![t(1), t(2)],
            },
            Op::Write {
                tx: t(1),
                obj: o(2),
            },
            Op::Write {
                tx: t(2),
                obj: o(3),
            },
            Op::Commit { tx: t(1) },
            Op::Commit { tx: t(2) },
            Op::Commit { tx: t(3) },
        ])
    }

    #[test]
    fn example_is_entangled_isolated() {
        assert!(is_entangled_isolated(&example()));
    }

    #[test]
    fn conflict_graph_of_example() {
        let g = ConflictGraph::build(&example().expand_quasi_reads());
        // R3(z) before W1(z): edge 3→1. No other conflicts.
        assert!(g.edges[&t(3)].contains(&t(1)));
        assert_eq!(g.find_cycle(), None);
        let order = g.topological_order().unwrap();
        let p3 = order.iter().position(|&x| x == t(3)).unwrap();
        let p1 = order.iter().position(|&x| x == t(1)).unwrap();
        assert!(p3 < p1);
    }

    #[test]
    fn classical_write_skew_style_cycle_detected() {
        // R1(x) R2(y) W1(y) W2(x): 1→2 on y, 2→1 on x.
        let s = Schedule::new(vec![
            Op::Read {
                tx: t(1),
                obj: o(0),
            },
            Op::Read {
                tx: t(2),
                obj: o(1),
            },
            Op::Write {
                tx: t(1),
                obj: o(1),
            },
            Op::Write {
                tx: t(2),
                obj: o(0),
            },
            Op::Commit { tx: t(1) },
            Op::Commit { tx: t(2) },
        ]);
        assert!(!is_entangled_isolated(&s));
        let anomalies = find_anomalies(&s);
        assert!(matches!(anomalies[0], Anomaly::ConflictCycle(_)));
    }

    #[test]
    fn figure_3b_unrepeatable_quasi_read_detected() {
        // Figure 3(b): Minnie (t2) grounds on Airlines (y); Mickey (t1)
        // grounds on Flights (x); they entangle. Donald (t3) then writes
        // Airlines, after which Mickey reads Airlines explicitly.
        // Mickey's quasi-read of y before Donald's write + his real read
        // after it = cycle t1 → t3 → t1.
        let s = Schedule::new(vec![
            Op::GroundRead {
                tx: t(1),
                obj: o(0),
            }, // Mickey grounds Flights
            Op::GroundRead {
                tx: t(2),
                obj: o(1),
            }, // Minnie grounds Airlines
            Op::Entangle {
                id: 1,
                txs: vec![t(1), t(2)],
            },
            Op::Write {
                tx: t(3),
                obj: o(1),
            }, // Donald inserts into Airlines
            Op::Commit { tx: t(3) },
            Op::Read {
                tx: t(1),
                obj: o(1),
            }, // Mickey checks Airlines
            Op::Commit { tx: t(1) },
            Op::Commit { tx: t(2) },
        ]);
        s.validate().unwrap();
        assert!(
            !is_entangled_isolated(&s),
            "unrepeatable quasi-read must be caught"
        );
        // Without quasi-read expansion the classical checker is blind to it.
        assert!(
            find_anomalies(&s).is_empty(),
            "raw schedule looks clean — the anomaly exists only via quasi-reads"
        );
        let anomalies = find_anomalies(&s.expand_quasi_reads());
        let Anomaly::ConflictCycle(cycle) = &anomalies[0] else {
            panic!("expected cycle, got {anomalies:?}")
        };
        assert!(cycle.contains(&t(1)) && cycle.contains(&t(3)));
    }

    #[test]
    fn figure_3a_widowed_transaction_detected() {
        // Mickey (t1) and Minnie (t2) entangle; Minnie aborts during the
        // hotel booking; Mickey commits → widowed.
        let s = Schedule::new(vec![
            Op::GroundRead {
                tx: t(1),
                obj: o(0),
            },
            Op::GroundRead {
                tx: t(2),
                obj: o(0),
            },
            Op::Entangle {
                id: 1,
                txs: vec![t(1), t(2)],
            },
            Op::Write {
                tx: t(1),
                obj: o(1),
            },
            Op::Write {
                tx: t(2),
                obj: o(2),
            },
            Op::Abort { tx: t(2) },
            Op::Commit { tx: t(1) },
        ]);
        s.validate().unwrap();
        let anomalies = find_anomalies(&s.expand_quasi_reads());
        assert!(anomalies.iter().any(|a| matches!(
            a,
            Anomaly::WidowedTransaction { entangle_id: 1, aborted, committed }
                if *aborted == t(2) && *committed == t(1)
        )));
        assert!(!is_entangled_isolated(&s));
        // Group abort (both abort) is fine.
        let mut both_abort = s.clone();
        both_abort.ops[6] = Op::Abort { tx: t(1) };
        assert!(is_entangled_isolated(&both_abort));
    }

    #[test]
    fn read_from_aborted_detected() {
        let s = Schedule::new(vec![
            Op::Write {
                tx: t(1),
                obj: o(0),
            },
            Op::Read {
                tx: t(2),
                obj: o(0),
            },
            Op::Abort { tx: t(1) },
            Op::Commit { tx: t(2) },
        ]);
        let anomalies = find_anomalies(&s);
        assert_eq!(
            anomalies,
            vec![Anomaly::ReadFromAborted {
                writer: t(1),
                reader: t(2),
                obj: o(0)
            }]
        );
        // Reader aborting too is tolerated (anomalies restricted to
        // committed transactions).
        let s = Schedule::new(vec![
            Op::Write {
                tx: t(1),
                obj: o(0),
            },
            Op::Read {
                tx: t(2),
                obj: o(0),
            },
            Op::Abort { tx: t(1) },
            Op::Abort { tx: t(2) },
        ]);
        assert!(find_anomalies(&s).is_empty());
    }

    #[test]
    fn isolation_levels_tolerate_selected_anomalies() {
        let widow = Anomaly::WidowedTransaction {
            entangle_id: 1,
            aborted: t(2),
            committed: t(1),
        };
        let s = example();
        assert!(!IsolationLevel::FULL.tolerates(&widow, &s));
        let relaxed = IsolationLevel {
            allow_widows: true,
            allow_unrepeatable_quasi_reads: false,
        };
        assert!(relaxed.tolerates(&widow, &s));
        // Classical cycle is never tolerated.
        let cyc = Anomaly::ConflictCycle(vec![t(1), t(2)]);
        let relaxed2 = IsolationLevel {
            allow_widows: false,
            allow_unrepeatable_quasi_reads: true,
        };
        assert!(!relaxed2.tolerates(&cyc, &s), "no quasi-reads in cycle txs");
    }

    #[test]
    fn aborted_transactions_excluded_from_conflict_graph() {
        // An aborted writer between two committed readers creates no edges.
        let s = Schedule::new(vec![
            Op::Read {
                tx: t(1),
                obj: o(0),
            },
            Op::Write {
                tx: t(2),
                obj: o(0),
            },
            Op::Abort { tx: t(2) },
            Op::Write {
                tx: t(1),
                obj: o(1),
            },
            Op::Commit { tx: t(1) },
        ]);
        let g = ConflictGraph::build(&s);
        assert_eq!(g.nodes.len(), 1);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn topological_order_none_for_cycles() {
        let s = Schedule::new(vec![
            Op::Read {
                tx: t(1),
                obj: o(0),
            },
            Op::Read {
                tx: t(2),
                obj: o(1),
            },
            Op::Write {
                tx: t(1),
                obj: o(1),
            },
            Op::Write {
                tx: t(2),
                obj: o(0),
            },
            Op::Commit { tx: t(1) },
            Op::Commit { tx: t(2) },
        ]);
        let g = ConflictGraph::build(&s);
        assert!(g.topological_order().is_none());
        assert!(g.find_cycle().is_some());
    }
}
