//! # youtopia-isolation
//!
//! Appendix C of *Entangled Transactions* as executable artefacts: the
//! formal model is not prose here — every definition is a function you can
//! run and property-test.
//!
//! | Paper artefact | This crate |
//! |---|---|
//! | Schedules with `R/W/R^G/E/C/A` ops and validity constraints (C.1) | [`Schedule`], [`Schedule::validate`] |
//! | Quasi-reads (C.2.1) | [`Schedule::expand_quasi_reads`] |
//! | Conflict graph over committed transactions | [`ConflictGraph`] |
//! | Requirements C.2/C.3/C.4 and Definition C.5 | [`find_anomalies`], [`is_entangled_isolated`] |
//! | Relaxed isolation levels (§3.3.1) | [`IsolationLevel`] |
//! | The determinism assumption of the Theorem 3.6 proof | [`sim`] (executable transaction logic) |
//! | Oracle construction (C.3.1) and oracle-serializability (C.7) | [`Oracle`], [`check_oracle_serializable`] |
//! | Snapshot reads over committed prefixes (multi-version extension) | [`Op::SnapshotPin`]/[`Op::SnapshotRead`], [`check_snapshot_serializable`] |
//!
//! Theorem 3.6 ("any schedule that is entangled-isolated is also
//! oracle-serializable") is property-tested in `tests/thm_3_6.rs` by
//! generating random valid schedules ([`gen`]), filtering to the isolated
//! ones, and running the executable check.

pub mod anomaly;
pub mod gen;
pub mod oracle;
pub mod schedule;
pub mod sim;

pub use anomaly::{find_anomalies, is_entangled_isolated, Anomaly, ConflictGraph, IsolationLevel};
pub use gen::{random_schedule, GenConfig};
pub use oracle::{
    check_oracle_serializable, check_snapshot_serializable, oracle_serialize, Oracle,
    SerializationWitness, SnapshotViolation, TheoremViolation,
};
pub use schedule::{Obj, Op, Schedule, Tx, ValidityError};
pub use sim::{execute, Db, ExecutionTrace};
