//! An executable semantics for abstract schedules.
//!
//! Appendix C's proof of Theorem 3.6 rests on a determinism assumption:
//! *"if a transaction sees the same values for its reads and entangled
//! query answers, and if the process that provides the entangled query
//! answers does not abort, then the transaction will produce the same
//! writes."* This module realizes that assumption concretely so the theorem
//! can be checked by execution:
//!
//! * every object holds an integer;
//! * each transaction carries an accumulator seeded by its id, folded over
//!   the values of its ordinary reads and its entangled-query answers;
//! * each write stores a value derived deterministically from the
//!   accumulator and a per-transaction write counter;
//! * an entanglement operation computes, from the grounding-read values of
//!   **all** participants, one answer per participant — this is exactly the
//!   cross-transaction information flow that quasi-reads model.
//!
//! The final database "reflects exactly the writes of all the committed
//! transactions in σ, in the order in which these writes occurred" (C.1).

use crate::schedule::{Obj, Op, Schedule, Tx};
use std::collections::{BTreeMap, BTreeSet};

/// An abstract database: object → integer value (absent = 0).
pub type Db = BTreeMap<Obj, i64>;

/// Deterministic mixing function (the "transaction logic").
pub fn mix(acc: i64, v: i64) -> i64 {
    acc.wrapping_mul(1_000_003)
        .wrapping_add(v)
        .wrapping_add(0x9E37)
}

/// The value a transaction writes given its state.
pub fn write_value(tx: Tx, acc: i64, counter: u32) -> i64 {
    mix(mix(acc, tx.0 as i64), counter as i64)
}

/// The per-participant answer of an entanglement operation.
pub fn answer_value(base: i64, tx: Tx) -> i64 {
    mix(base, 7 * tx.0 as i64 + 13)
}

/// Everything observed while executing a schedule.
#[derive(Debug, Clone, Default)]
pub struct ExecutionTrace {
    /// Final database: committed writes replayed in schedule order.
    pub final_db: Db,
    /// `Ans_k`: entanglement id → (participant → answer). This is the data
    /// structure C.3.1 stores inside the oracle.
    pub answers: BTreeMap<u32, BTreeMap<Tx, i64>>,
    /// The grounding-read values feeding each entanglement operation, in
    /// read order — the basis against which validating reads are compared.
    pub grounding_basis: BTreeMap<u32, Vec<(Tx, Obj, i64)>>,
    /// Values written, per op position.
    pub writes: Vec<(Tx, Obj, i64)>,
    /// Values seen by ordinary reads, in op order.
    pub reads: Vec<(Tx, Obj, i64)>,
    /// Values seen by grounding reads of each transaction, in order.
    pub grounding_reads: BTreeMap<Tx, Vec<(Obj, i64)>>,
    /// Values seen by snapshot reads of each transaction, in order. A
    /// snapshot read observes the **committed-prefix** state at the
    /// transaction's pin ([`Op::SnapshotPin`]): the writes of exactly
    /// those transactions committed before the pin, applied in schedule
    /// order (matching C.1's final-database rule) — never dirty state.
    pub snapshot_reads: BTreeMap<Tx, Vec<(Obj, i64)>>,
    /// The committed transactions visible to each snapshot transaction
    /// (the cut its pin captured).
    pub snapshot_sets: BTreeMap<Tx, BTreeSet<Tx>>,
}

/// Execute a schedule on a starting database. Quasi-reads are ignored
/// (they are derived bookkeeping, not executions).
pub fn execute(s: &Schedule, initial: &Db) -> ExecutionTrace {
    let mut db = initial.clone();
    let mut acc: BTreeMap<Tx, i64> = BTreeMap::new();
    let mut counter: BTreeMap<Tx, u32> = BTreeMap::new();
    // Grounding values accumulated since the tx's last entangle/abort.
    let mut pending: BTreeMap<Tx, Vec<(Obj, i64)>> = BTreeMap::new();
    let mut trace = ExecutionTrace::default();
    let committed = s.committed();

    // Committed-prefix tracking for snapshot semantics: which txs have
    // committed so far, and each snapshot tx's pinned database (writes of
    // the committed prefix in schedule order, over the initial state).
    let mut committed_so_far: BTreeSet<Tx> = BTreeSet::new();
    let mut snapshot_db: BTreeMap<Tx, Db> = BTreeMap::new();
    let pin = |trace: &ExecutionTrace,
               committed_so_far: &BTreeSet<Tx>,
               initial: &Db|
     -> (Db, BTreeSet<Tx>) {
        let mut db = initial.clone();
        for (wtx, obj, v) in &trace.writes {
            if committed_so_far.contains(wtx) {
                db.insert(*obj, *v);
            }
        }
        (db, committed_so_far.clone())
    };

    let get = |db: &Db, o: Obj| db.get(&o).copied().unwrap_or(0);

    for op in &s.ops {
        match op {
            Op::Read { tx, obj } => {
                let v = get(&db, *obj);
                let a = acc.entry(*tx).or_insert(1000 + tx.0 as i64);
                *a = mix(*a, v);
                trace.reads.push((*tx, *obj, v));
            }
            Op::GroundRead { tx, obj } => {
                let v = get(&db, *obj);
                pending.entry(*tx).or_default().push((*obj, v));
                trace
                    .grounding_reads
                    .entry(*tx)
                    .or_default()
                    .push((*obj, v));
            }
            Op::QuasiRead { .. } => {}
            Op::Write { tx, obj } => {
                let a = *acc.entry(*tx).or_insert(1000 + tx.0 as i64);
                let c = counter.entry(*tx).or_insert(0);
                *c += 1;
                let v = write_value(*tx, a, *c);
                db.insert(*obj, v);
                trace.writes.push((*tx, *obj, v));
            }
            Op::Entangle { id, txs } => {
                // Answer base: fold over all participants' grounding values
                // in participant order — the joint function of the
                // groundings that entangled query evaluation computes.
                let mut base = *id as i64;
                let mut basis = Vec::new();
                for t in txs {
                    for (o, v) in pending.remove(t).unwrap_or_default() {
                        base = mix(base, v);
                        basis.push((*t, o, v));
                    }
                }
                trace.grounding_basis.insert(*id, basis);
                let entry = trace.answers.entry(*id).or_default();
                for t in txs {
                    let ans = answer_value(base, *t);
                    let a = acc.entry(*t).or_insert(1000 + t.0 as i64);
                    *a = mix(*a, ans);
                    entry.insert(*t, ans);
                }
            }
            Op::Abort { tx } => {
                pending.remove(tx);
            }
            Op::Commit { tx } => {
                committed_so_far.insert(*tx);
            }
            Op::SnapshotPin { tx } => {
                let (db, set) = pin(&trace, &committed_so_far, initial);
                snapshot_db.insert(*tx, db);
                trace.snapshot_sets.insert(*tx, set);
            }
            Op::SnapshotRead { tx, obj } => {
                // Implicit pin at the first snapshot read if none was
                // recorded.
                if !snapshot_db.contains_key(tx) {
                    let (db, set) = pin(&trace, &committed_so_far, initial);
                    snapshot_db.insert(*tx, db);
                    trace.snapshot_sets.insert(*tx, set);
                }
                let v = get(&snapshot_db[tx], *obj);
                let a = acc.entry(*tx).or_insert(1000 + tx.0 as i64);
                *a = mix(*a, v);
                trace.snapshot_reads.entry(*tx).or_default().push((*obj, v));
            }
        }
    }

    // Final database per C.1: only committed writes, in order.
    let mut final_db = initial.clone();
    for (tx, obj, v) in &trace.writes {
        if committed.contains(tx) {
            final_db.insert(*obj, *v);
        }
    }
    trace.final_db = final_db;
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> Tx {
        Tx(n)
    }
    fn o(n: u32) -> Obj {
        Obj(n)
    }

    fn example() -> Schedule {
        Schedule::new(vec![
            Op::GroundRead {
                tx: t(1),
                obj: o(0),
            },
            Op::GroundRead {
                tx: t(2),
                obj: o(1),
            },
            Op::Read {
                tx: t(3),
                obj: o(2),
            },
            Op::Entangle {
                id: 1,
                txs: vec![t(1), t(2)],
            },
            Op::Write {
                tx: t(1),
                obj: o(2),
            },
            Op::Write {
                tx: t(2),
                obj: o(3),
            },
            Op::Commit { tx: t(1) },
            Op::Commit { tx: t(2) },
            Op::Commit { tx: t(3) },
        ])
    }

    #[test]
    fn execution_is_deterministic() {
        let db: Db = [(o(0), 5), (o(1), 7), (o(2), 9)].into_iter().collect();
        let t1 = execute(&example(), &db);
        let t2 = execute(&example(), &db);
        assert_eq!(t1.final_db, t2.final_db);
        assert_eq!(t1.answers, t2.answers);
    }

    #[test]
    fn entangled_partners_get_consistent_but_distinct_answers() {
        let db: Db = [(o(0), 5), (o(1), 7)].into_iter().collect();
        let tr = execute(&example(), &db);
        let ans = &tr.answers[&1];
        assert_eq!(ans.len(), 2);
        // Distinct per participant but derived from a common base.
        assert_ne!(ans[&t(1)], ans[&t(2)]);
    }

    #[test]
    fn answers_depend_on_partner_groundings() {
        // Changing what Minnie grounds on changes Mickey's answer: that is
        // the cross-transaction information flow quasi-reads model.
        let db1: Db = [(o(0), 5), (o(1), 7)].into_iter().collect();
        let db2: Db = [(o(0), 5), (o(1), 8)].into_iter().collect();
        let a1 = execute(&example(), &db1).answers[&1][&t(1)];
        let a2 = execute(&example(), &db2).answers[&1][&t(1)];
        assert_ne!(
            a1, a2,
            "t1 never read o(1) directly, yet its answer changed"
        );
    }

    #[test]
    fn aborted_writes_absent_from_final_db() {
        let s = Schedule::new(vec![
            Op::Write {
                tx: t(1),
                obj: o(0),
            },
            Op::Write {
                tx: t(2),
                obj: o(1),
            },
            Op::Abort { tx: t(1) },
            Op::Commit { tx: t(2) },
        ]);
        let tr = execute(&s, &Db::new());
        assert!(!tr.final_db.contains_key(&o(0)));
        assert!(tr.final_db.contains_key(&o(1)));
    }

    #[test]
    fn committed_overwrite_order_respected() {
        let s = Schedule::new(vec![
            Op::Write {
                tx: t(1),
                obj: o(0),
            },
            Op::Write {
                tx: t(2),
                obj: o(0),
            },
            Op::Commit { tx: t(1) },
            Op::Commit { tx: t(2) },
        ]);
        let tr = execute(&s, &Db::new());
        // Last committed write wins.
        assert_eq!(tr.final_db[&o(0)], tr.writes[1].2);
    }

    #[test]
    fn reads_observe_dirty_state_during_execution() {
        // The *running* database shows uncommitted writes (that is what
        // makes dirty reads representable); the *final* db does not.
        let s = Schedule::new(vec![
            Op::Write {
                tx: t(1),
                obj: o(0),
            },
            Op::Read {
                tx: t(2),
                obj: o(0),
            },
            Op::Abort { tx: t(1) },
            Op::Commit { tx: t(2) },
        ]);
        let tr = execute(&s, &Db::new());
        assert_eq!(tr.reads[0].2, tr.writes[0].2, "t2 saw t1's dirty write");
        assert!(!tr.final_db.contains_key(&o(0)));
    }

    #[test]
    fn snapshot_reads_see_the_committed_prefix_not_dirty_state() {
        // t1 commits a write; t2 writes but has not committed when t3
        // pins. t3's snapshot read sees t1's value even though t2's dirty
        // write is newer in the running db — and keeps seeing it after t2
        // commits (the pin is a point in time).
        let s = Schedule::new(vec![
            Op::Write {
                tx: t(1),
                obj: o(0),
            },
            Op::Commit { tx: t(1) },
            Op::Write {
                tx: t(2),
                obj: o(0),
            },
            Op::SnapshotPin { tx: t(3) },
            Op::Commit { tx: t(2) },
            Op::SnapshotRead {
                tx: t(3),
                obj: o(0),
            },
            Op::Commit { tx: t(3) },
        ]);
        s.validate().unwrap();
        let tr = execute(&s, &Db::new());
        assert_eq!(tr.snapshot_reads[&t(3)], vec![(o(0), tr.writes[0].2)]);
        assert_eq!(tr.snapshot_sets[&t(3)], BTreeSet::from([t(1)]));
        // An ordinary read at the same position would have seen t2's
        // dirty write — that asymmetry is the whole point.
        assert_ne!(tr.writes[0].2, tr.writes[1].2);
    }

    #[test]
    fn snapshot_read_without_pin_pins_implicitly() {
        let s = Schedule::new(vec![
            Op::Write {
                tx: t(1),
                obj: o(0),
            },
            Op::Commit { tx: t(1) },
            Op::SnapshotRead {
                tx: t(2),
                obj: o(0),
            },
            Op::Commit { tx: t(2) },
        ]);
        let tr = execute(&s, &Db::new());
        assert_eq!(tr.snapshot_reads[&t(2)][0].1, tr.writes[0].2);
        assert_eq!(tr.snapshot_sets[&t(2)], BTreeSet::from([t(1)]));
    }

    #[test]
    fn grounding_basis_recorded_in_read_order() {
        let db: Db = [(o(0), 5), (o(1), 7)].into_iter().collect();
        let tr = execute(&example(), &db);
        assert_eq!(
            tr.grounding_basis[&1],
            vec![(t(1), o(0), 5), (t(2), o(1), 7)]
        );
        assert_eq!(tr.grounding_reads[&t(1)], vec![(o(0), 5)]);
    }
}
