//! Random valid-schedule generation for property testing (Theorem 3.6).
//!
//! The generator builds transaction programs (reads, writes, at most a few
//! entangled queries each) and interleaves them with a seeded scheduler
//! that respects the validity constraints of C.1 by construction: grounding
//! reads block their transaction until an entangle or abort, outcomes come
//! last, every transaction finishes.

use crate::schedule::{Obj, Op, Schedule, Tx};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    pub txs: u32,
    pub objs: u32,
    /// Classical read/write steps per transaction (before outcome).
    pub steps_per_tx: u32,
    /// Probability that a step is an entangled query (grounding reads +
    /// wait for an entangle op).
    pub entangle_prob: f64,
    /// Probability a transaction aborts at the end.
    pub abort_prob: f64,
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            txs: 3,
            objs: 4,
            steps_per_tx: 4,
            entangle_prob: 0.3,
            abort_prob: 0.2,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Step {
    Read(Obj),
    Write(Obj),
    /// Ground on these objects, then wait to entangle.
    Entangle(Vec<Obj>),
}

/// Generate a random valid schedule.
pub fn random_schedule(cfg: &GenConfig) -> Schedule {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let txs: Vec<Tx> = (1..=cfg.txs).map(Tx).collect();

    // Programs.
    let mut programs: Vec<Vec<Step>> = Vec::new();
    for _ in &txs {
        let mut prog = Vec::new();
        for _ in 0..cfg.steps_per_tx {
            let roll: f64 = rng.gen();
            if roll < cfg.entangle_prob {
                let n = rng.gen_range(1..=2.min(cfg.objs));
                let objs = (0..n).map(|_| Obj(rng.gen_range(0..cfg.objs))).collect();
                prog.push(Step::Entangle(objs));
            } else if roll < cfg.entangle_prob + (1.0 - cfg.entangle_prob) / 2.0 {
                prog.push(Step::Read(Obj(rng.gen_range(0..cfg.objs))));
            } else {
                prog.push(Step::Write(Obj(rng.gen_range(0..cfg.objs))));
            }
        }
        programs.push(prog);
    }

    // Interleave.
    #[derive(PartialEq, Clone, Copy)]
    enum St {
        Running,
        Waiting, // grounding reads issued, waiting for entangle
        Done,
    }
    let mut pc: Vec<usize> = vec![0; txs.len()];
    let mut state: Vec<St> = vec![St::Running; txs.len()];
    let mut ops: Vec<Op> = Vec::new();
    let mut next_entangle_id: u32 = 1;

    loop {
        let live: Vec<usize> = (0..txs.len()).filter(|&i| state[i] != St::Done).collect();
        if live.is_empty() {
            break;
        }
        // If several transactions are waiting, sometimes entangle them.
        let waiting: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&i| state[i] == St::Waiting)
            .collect();
        let all_waiting = waiting.len() == live.len();
        if waiting.len() >= 2 && (all_waiting || rng.gen_bool(0.5)) {
            // Entangle a random subset of size >= 2.
            let k = rng.gen_range(2..=waiting.len());
            let mut chosen = waiting.clone();
            while chosen.len() > k {
                let idx = rng.gen_range(0..chosen.len());
                chosen.remove(idx);
            }
            ops.push(Op::Entangle {
                id: next_entangle_id,
                txs: chosen.iter().map(|&i| txs[i]).collect(),
            });
            next_entangle_id += 1;
            for &i in &chosen {
                state[i] = St::Running;
                pc[i] += 1;
            }
            continue;
        }
        if all_waiting {
            // Fewer than 2 waiting (i.e. exactly 1) and nobody can run:
            // the lone waiter aborts — its entangled query never found a
            // partner (exactly the paper's timeout/abort path).
            let i = waiting[0];
            ops.push(Op::Abort { tx: txs[i] });
            state[i] = St::Done;
            continue;
        }
        // Pick a runnable transaction.
        let runnable: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&i| state[i] == St::Running)
            .collect();
        let i = runnable[rng.gen_range(0..runnable.len())];
        if pc[i] >= programs[i].len() {
            // Outcome.
            if rng.gen_bool(cfg.abort_prob) {
                ops.push(Op::Abort { tx: txs[i] });
            } else {
                ops.push(Op::Commit { tx: txs[i] });
            }
            state[i] = St::Done;
            continue;
        }
        match &programs[i][pc[i]] {
            Step::Read(o) => {
                ops.push(Op::Read {
                    tx: txs[i],
                    obj: *o,
                });
                pc[i] += 1;
            }
            Step::Write(o) => {
                ops.push(Op::Write {
                    tx: txs[i],
                    obj: *o,
                });
                pc[i] += 1;
            }
            Step::Entangle(objs) => {
                for o in objs {
                    ops.push(Op::GroundRead {
                        tx: txs[i],
                        obj: *o,
                    });
                }
                state[i] = St::Waiting;
                // pc advances when the entangle op fires.
            }
        }
    }

    Schedule::new(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_schedules_are_valid() {
        for seed in 0..200 {
            let cfg = GenConfig {
                seed,
                ..Default::default()
            };
            let s = random_schedule(&cfg);
            s.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{s}"));
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let cfg = GenConfig {
            seed: 42,
            ..Default::default()
        };
        assert_eq!(random_schedule(&cfg), random_schedule(&cfg));
    }

    #[test]
    fn generator_produces_entanglements_and_aborts() {
        let mut saw_entangle = false;
        let mut saw_abort = false;
        for seed in 0..100 {
            let cfg = GenConfig {
                seed,
                entangle_prob: 0.5,
                abort_prob: 0.3,
                ..Default::default()
            };
            let s = random_schedule(&cfg);
            saw_entangle |= s.ops.iter().any(|o| matches!(o, Op::Entangle { .. }));
            saw_abort |= s.ops.iter().any(|o| matches!(o, Op::Abort { .. }));
        }
        assert!(saw_entangle, "no entanglements in 100 seeds");
        assert!(saw_abort, "no aborts in 100 seeds");
    }

    #[test]
    fn bigger_configs_stay_valid() {
        for seed in 0..50 {
            let cfg = GenConfig {
                txs: 6,
                objs: 3,
                steps_per_tx: 6,
                entangle_prob: 0.4,
                abort_prob: 0.25,
                seed,
            };
            random_schedule(&cfg).validate().unwrap();
        }
    }
}
