//! Entangled transaction schedules (Appendix C.1).
//!
//! A schedule is a sequence of read, write, grounding-read, quasi-read,
//! entangle, commit and abort operations satisfying the validity
//! constraints of C.1. Quasi-reads are normally *derived* — call
//! [`Schedule::expand_quasi_reads`] to make the information flow of
//! entanglement explicit before running anomaly checks (C.2.1).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Transaction identifier within one schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tx(pub u32);

impl fmt::Display for Tx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A database object.
///
/// The paper's formalism abstracts over object granularity; real engines
/// read at table granularity (scans, grounding reads) while writing
/// individual rows. Objects therefore carry a `space` (the table, or the
/// abstract `x`/`y`/`z`) and an optional `item` (a row within it); two
/// objects *overlap* — and their operations can conflict — when the spaces
/// match and either side covers the whole space or the items coincide.
/// Flat formal schedules simply use `Obj::flat(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Obj {
    pub space: u32,
    pub item: Option<u64>,
}

#[allow(non_snake_case)]
/// Compatibility constructor: `Obj(n)` in the paper-style flat notation.
pub fn Obj(space: u32) -> Obj {
    Obj::flat(space)
}

impl Obj {
    /// A whole abstract object / table.
    pub const fn flat(space: u32) -> Obj {
        Obj { space, item: None }
    }

    /// A single row within a table.
    pub const fn row(space: u32, item: u64) -> Obj {
        Obj {
            space,
            item: Some(item),
        }
    }

    /// Multigranularity overlap: whole-space objects overlap everything in
    /// the space; rows overlap only themselves.
    pub fn overlaps(&self, other: &Obj) -> bool {
        self.space == other.space
            && match (self.item, other.item) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            }
    }
}

impl fmt::Display for Obj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // x, y, z, o3, o4, … with optional [row].
        match self.space {
            0 => write!(f, "x")?,
            1 => write!(f, "y")?,
            2 => write!(f, "z")?,
            n => write!(f, "o{n}")?,
        }
        if let Some(r) = self.item {
            write!(f, "[{r}]")?;
        }
        Ok(())
    }
}

/// One schedule operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Ordinary read `R_i(x)`.
    Read { tx: Tx, obj: Obj },
    /// Grounding read `R^G_i(x)` — performed by the system on behalf of
    /// the transaction's entangled query.
    GroundRead { tx: Tx, obj: Obj },
    /// Quasi-read `R^Q_i(x)` — derived information flow (C.2.1); present
    /// only in expanded schedules.
    QuasiRead { tx: Tx, obj: Obj },
    /// Write `W_i(x)`.
    Write { tx: Tx, obj: Obj },
    /// Entanglement operation `E^k` over the given transactions.
    Entangle { id: u32, txs: Vec<Tx> },
    /// `C_i`.
    Commit { tx: Tx },
    /// `A_i`.
    Abort { tx: Tx },
    /// Snapshot pin `P_i`: from here on, `tx`'s snapshot reads observe the
    /// database state produced by exactly the transactions committed
    /// *before this point* of the schedule (a multi-version extension
    /// beyond the paper: the transaction reads a committed prefix instead
    /// of acquiring read locks).
    SnapshotPin { tx: Tx },
    /// Snapshot read `R^S_i(x)`: reads `x` as of `tx`'s pinned snapshot
    /// ([`Op::SnapshotPin`]; a read with no preceding pin pins implicitly
    /// at the read itself). Takes no locks and therefore participates in
    /// no conflict-graph edges — its correctness is checked separately by
    /// `check_snapshot_serializable`.
    SnapshotRead { tx: Tx, obj: Obj },
}

impl Op {
    /// The single transaction performing this op (entangle ops involve
    /// several and return `None`).
    pub fn tx(&self) -> Option<Tx> {
        match self {
            Op::Read { tx, .. }
            | Op::GroundRead { tx, .. }
            | Op::QuasiRead { tx, .. }
            | Op::Write { tx, .. }
            | Op::Commit { tx }
            | Op::Abort { tx }
            | Op::SnapshotPin { tx }
            | Op::SnapshotRead { tx, .. } => Some(*tx),
            Op::Entangle { .. } => None,
        }
    }

    /// The object touched, if any.
    pub fn obj(&self) -> Option<Obj> {
        match self {
            Op::Read { obj, .. }
            | Op::GroundRead { obj, .. }
            | Op::QuasiRead { obj, .. }
            | Op::SnapshotRead { obj, .. }
            | Op::Write { obj, .. } => Some(*obj),
            _ => None,
        }
    }

    /// Any kind of read (ordinary, grounding, quasi or snapshot)?
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            Op::Read { .. }
                | Op::GroundRead { .. }
                | Op::QuasiRead { .. }
                | Op::SnapshotRead { .. }
        )
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read { tx, obj } => write!(f, "R{}({obj})", tx.0),
            Op::GroundRead { tx, obj } => write!(f, "RG{}({obj})", tx.0),
            Op::QuasiRead { tx, obj } => write!(f, "RQ{}({obj})", tx.0),
            Op::Write { tx, obj } => write!(f, "W{}({obj})", tx.0),
            Op::Entangle { id, txs } => {
                write!(f, "E{id}[")?;
                for (i, t) in txs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", t.0)?;
                }
                write!(f, "]")
            }
            Op::Commit { tx } => write!(f, "C{}", tx.0),
            Op::Abort { tx } => write!(f, "A{}", tx.0),
            Op::SnapshotPin { tx } => write!(f, "P{}", tx.0),
            Op::SnapshotRead { tx, obj } => write!(f, "RS{}({obj})", tx.0),
        }
    }
}

/// Violations of the validity constraints of C.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidityError {
    /// A transaction has neither (incomplete history) or both of `A`/`C`.
    NotExactlyOneOutcome(Tx),
    /// An operation follows the transaction's commit/abort.
    OpAfterOutcome(Tx),
    /// A grounding read with no subsequent entangle-or-abort for that tx.
    DanglingGroundingRead(Tx),
    /// A non-grounding op between a grounding read and the tx's next
    /// entangle/abort (entangled query calls are blocking).
    OpDuringBlockedEvaluation(Tx),
    /// An entangle op names a transaction that never appears, or fewer
    /// than one participant.
    MalformedEntangle(u32),
}

impl fmt::Display for ValidityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidityError::NotExactlyOneOutcome(t) => {
                write!(f, "{t} must have exactly one of commit/abort")
            }
            ValidityError::OpAfterOutcome(t) => write!(f, "{t} operates after its outcome"),
            ValidityError::DanglingGroundingRead(t) => {
                write!(f, "{t} has a grounding read with no later entangle/abort")
            }
            ValidityError::OpDuringBlockedEvaluation(t) => {
                write!(
                    f,
                    "{t} operates while blocked on entangled-query evaluation"
                )
            }
            ValidityError::MalformedEntangle(k) => write!(f, "entangle op {k} is malformed"),
        }
    }
}

impl std::error::Error for ValidityError {}

/// A (complete) schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    pub ops: Vec<Op>,
}

impl Schedule {
    pub fn new(ops: Vec<Op>) -> Schedule {
        Schedule { ops }
    }

    /// All transactions appearing in the schedule.
    pub fn txs(&self) -> BTreeSet<Tx> {
        let mut out = BTreeSet::new();
        for op in &self.ops {
            if let Some(t) = op.tx() {
                out.insert(t);
            }
            if let Op::Entangle { txs, .. } = op {
                out.extend(txs.iter().copied());
            }
        }
        out
    }

    /// Transactions that commit.
    pub fn committed(&self) -> BTreeSet<Tx> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Commit { tx } => Some(*tx),
                _ => None,
            })
            .collect()
    }

    /// Transactions that abort.
    pub fn aborted(&self) -> BTreeSet<Tx> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Abort { tx } => Some(*tx),
                _ => None,
            })
            .collect()
    }

    /// Check the validity constraints of C.1.
    pub fn validate(&self) -> Result<(), ValidityError> {
        let txs = self.txs();
        let committed = self.committed();
        let aborted = self.aborted();
        // Exactly one outcome each (completeness).
        for &t in &txs {
            let c = committed.contains(&t) as u8;
            let a = aborted.contains(&t) as u8;
            if c + a != 1 {
                return Err(ValidityError::NotExactlyOneOutcome(t));
            }
        }
        // No double outcomes hiding in the op list.
        let mut outcome_count: BTreeMap<Tx, usize> = BTreeMap::new();
        for op in &self.ops {
            if let Op::Commit { tx } | Op::Abort { tx } = op {
                *outcome_count.entry(*tx).or_default() += 1;
            }
        }
        if let Some((&t, _)) = outcome_count.iter().find(|(_, &c)| c > 1) {
            return Err(ValidityError::NotExactlyOneOutcome(t));
        }

        // Outcome is last; blocking discipline for grounding reads.
        #[derive(PartialEq)]
        enum TxState {
            Running,
            Blocked, // issued grounding reads, awaiting entangle
            Done,
        }
        let mut state: BTreeMap<Tx, TxState> = txs.iter().map(|&t| (t, TxState::Running)).collect();
        for op in &self.ops {
            match op {
                Op::GroundRead { tx, .. } => match state[tx] {
                    TxState::Done => return Err(ValidityError::OpAfterOutcome(*tx)),
                    _ => {
                        state.insert(*tx, TxState::Blocked);
                    }
                },
                Op::QuasiRead { .. } => {
                    // Derived ops are exempt from the blocking discipline —
                    // they are simultaneous with their grounding read.
                }
                Op::Read { tx, .. }
                | Op::Write { tx, .. }
                | Op::SnapshotPin { tx }
                | Op::SnapshotRead { tx, .. } => match state[tx] {
                    TxState::Done => return Err(ValidityError::OpAfterOutcome(*tx)),
                    TxState::Blocked => return Err(ValidityError::OpDuringBlockedEvaluation(*tx)),
                    TxState::Running => {}
                },
                Op::Entangle { id, txs: parts } => {
                    if parts.is_empty() {
                        return Err(ValidityError::MalformedEntangle(*id));
                    }
                    for t in parts {
                        match state.get(t) {
                            None => return Err(ValidityError::MalformedEntangle(*id)),
                            Some(TxState::Done) => return Err(ValidityError::OpAfterOutcome(*t)),
                            _ => {
                                state.insert(*t, TxState::Running);
                            }
                        }
                    }
                }
                Op::Commit { tx } => match state[tx] {
                    TxState::Done => return Err(ValidityError::OpAfterOutcome(*tx)),
                    TxState::Blocked => {
                        // Commit while blocked would mean the entangled
                        // query never completed; C.1 requires an entangle
                        // or abort after grounding reads.
                        return Err(ValidityError::DanglingGroundingRead(*tx));
                    }
                    TxState::Running => {
                        state.insert(*tx, TxState::Done);
                    }
                },
                Op::Abort { tx } => match state[tx] {
                    TxState::Done => return Err(ValidityError::OpAfterOutcome(*tx)),
                    _ => {
                        state.insert(*tx, TxState::Done);
                    }
                },
            }
        }
        // Any tx still blocked at the end has a dangling grounding read
        // (unreachable given the completeness check, kept for safety).
        for (t, s) in &state {
            if *s == TxState::Blocked {
                return Err(ValidityError::DanglingGroundingRead(*t));
            }
        }
        Ok(())
    }

    /// Make quasi-reads explicit (C.2.1): whenever transaction `j`
    /// performs a grounding read associated with entanglement operation
    /// `E^k`, every other participant of `E^k` performs a simultaneous
    /// quasi-read on the same object. Grounding reads whose transaction
    /// aborts instead of entangling produce no quasi-reads.
    ///
    /// Simultaneity is represented by placing the quasi-reads immediately
    /// after their grounding read.
    pub fn expand_quasi_reads(&self) -> Schedule {
        // For each grounding read, find the tx's next entangle op (if any).
        let mut out: Vec<Op> = Vec::with_capacity(self.ops.len() * 2);
        for (i, op) in self.ops.iter().enumerate() {
            out.push(op.clone());
            if let Op::GroundRead { tx, obj } = op {
                // Scan forward for this tx's next Entangle or Abort.
                let mut partners: Option<Vec<Tx>> = None;
                for later in &self.ops[i + 1..] {
                    match later {
                        Op::Entangle { txs, .. } if txs.contains(tx) => {
                            partners = Some(txs.clone());
                            break;
                        }
                        Op::Abort { tx: t } if t == tx => break,
                        _ => {}
                    }
                }
                if let Some(parts) = partners {
                    for p in parts {
                        if p != *tx {
                            out.push(Op::QuasiRead { tx: p, obj: *obj });
                        }
                    }
                }
            }
        }
        Schedule { ops: out }
    }

    /// The participants of each entanglement operation.
    pub fn entanglements(&self) -> BTreeMap<u32, Vec<Tx>> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Entangle { id, txs } => Some((*id, txs.clone())),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for Schedule {
    /// Renders the paper's inline notation, e.g. `RG1(x) RQ2(x) E1[1,2] …`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> Tx {
        Tx(n)
    }
    fn o(n: u32) -> Obj {
        Obj(n)
    }

    /// The example schedule from C.1:
    /// RG1(x) RG2(y) R3(z) E1{1,2} W1(z) W2(w) C1 C2 C3.
    fn example() -> Schedule {
        Schedule::new(vec![
            Op::GroundRead {
                tx: t(1),
                obj: o(0),
            },
            Op::GroundRead {
                tx: t(2),
                obj: o(1),
            },
            Op::Read {
                tx: t(3),
                obj: o(2),
            },
            Op::Entangle {
                id: 1,
                txs: vec![t(1), t(2)],
            },
            Op::Write {
                tx: t(1),
                obj: o(2),
            },
            Op::Write {
                tx: t(2),
                obj: o(3),
            },
            Op::Commit { tx: t(1) },
            Op::Commit { tx: t(2) },
            Op::Commit { tx: t(3) },
        ])
    }

    #[test]
    fn example_schedule_is_valid() {
        example().validate().unwrap();
        assert_eq!(example().txs().len(), 3);
        assert_eq!(example().committed().len(), 3);
        assert!(example().aborted().is_empty());
    }

    #[test]
    fn quasi_read_expansion_matches_paper() {
        // Expanded form: (RG1(x) RQ2(x)) (RG2(y) RQ1(y)) R3(z) E1 …
        let ex = example().expand_quasi_reads();
        assert_eq!(
            ex.ops[0],
            Op::GroundRead {
                tx: t(1),
                obj: o(0)
            }
        );
        assert_eq!(
            ex.ops[1],
            Op::QuasiRead {
                tx: t(2),
                obj: o(0)
            }
        );
        assert_eq!(
            ex.ops[2],
            Op::GroundRead {
                tx: t(2),
                obj: o(1)
            }
        );
        assert_eq!(
            ex.ops[3],
            Op::QuasiRead {
                tx: t(1),
                obj: o(1)
            }
        );
        assert_eq!(ex.ops.len(), example().ops.len() + 2);
    }

    #[test]
    fn no_quasi_reads_for_aborting_grounder() {
        // "In the pathological case where a transaction performs a
        // grounding read but there is no subsequent entanglement operation
        // (i.e. the transaction aborts instead), no quasi-reads are
        // associated with that grounding read."
        let s = Schedule::new(vec![
            Op::GroundRead {
                tx: t(1),
                obj: o(0),
            },
            Op::Abort { tx: t(1) },
            Op::Read {
                tx: t(2),
                obj: o(0),
            },
            Op::Commit { tx: t(2) },
        ]);
        s.validate().unwrap();
        let ex = s.expand_quasi_reads();
        assert!(!ex.ops.iter().any(|op| matches!(op, Op::QuasiRead { .. })));
    }

    #[test]
    fn incomplete_history_rejected() {
        let s = Schedule::new(vec![Op::Read {
            tx: t(1),
            obj: o(0),
        }]);
        assert_eq!(s.validate(), Err(ValidityError::NotExactlyOneOutcome(t(1))));
        let s = Schedule::new(vec![Op::Commit { tx: t(1) }, Op::Abort { tx: t(1) }]);
        assert!(s.validate().is_err());
    }

    #[test]
    fn ops_after_outcome_rejected() {
        let s = Schedule::new(vec![
            Op::Commit { tx: t(1) },
            Op::Write {
                tx: t(1),
                obj: o(0),
            },
        ]);
        assert_eq!(s.validate(), Err(ValidityError::OpAfterOutcome(t(1))));
    }

    #[test]
    fn blocking_discipline_enforced() {
        // A write between a grounding read and the entangle is illegal:
        // entangled-query calls are blocking.
        let s = Schedule::new(vec![
            Op::GroundRead {
                tx: t(1),
                obj: o(0),
            },
            Op::Write {
                tx: t(1),
                obj: o(1),
            },
            Op::Entangle {
                id: 1,
                txs: vec![t(1)],
            },
            Op::Commit { tx: t(1) },
        ]);
        assert_eq!(
            s.validate(),
            Err(ValidityError::OpDuringBlockedEvaluation(t(1)))
        );
        // More grounding reads are fine.
        let s = Schedule::new(vec![
            Op::GroundRead {
                tx: t(1),
                obj: o(0),
            },
            Op::GroundRead {
                tx: t(1),
                obj: o(1),
            },
            Op::Entangle {
                id: 1,
                txs: vec![t(1)],
            },
            Op::Commit { tx: t(1) },
        ]);
        s.validate().unwrap();
    }

    #[test]
    fn dangling_grounding_read_rejected() {
        let s = Schedule::new(vec![
            Op::GroundRead {
                tx: t(1),
                obj: o(0),
            },
            Op::Commit { tx: t(1) },
        ]);
        assert_eq!(
            s.validate(),
            Err(ValidityError::DanglingGroundingRead(t(1)))
        );
        // Abort after grounding read is fine (failed entanglement).
        let s = Schedule::new(vec![
            Op::GroundRead {
                tx: t(1),
                obj: o(0),
            },
            Op::Abort { tx: t(1) },
        ]);
        s.validate().unwrap();
    }

    #[test]
    fn malformed_entangle_rejected() {
        let s = Schedule::new(vec![Op::Entangle { id: 7, txs: vec![] }]);
        assert_eq!(s.validate(), Err(ValidityError::MalformedEntangle(7)));
    }

    #[test]
    fn display_notation() {
        let s = example();
        let txt = s.to_string();
        assert!(txt.starts_with("RG1(x) RG2(y) R3(z) E1[1,2] W1(z)"));
    }

    #[test]
    fn entanglements_map() {
        let e = example().entanglements();
        assert_eq!(e.len(), 1);
        assert_eq!(e[&1], vec![t(1), t(2)]);
    }
}
