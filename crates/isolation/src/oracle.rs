//! Oracle-serializability (C.3) as an executable check.
//!
//! [`Oracle::from_trace`] performs the construction of C.3.1: observe σ's
//! execution, record the answers `Ans_k` returned at each entanglement
//! operation, and replay them verbatim during serial re-execution.
//! [`check_oracle_serializable`] then implements Definition C.7 directly:
//! pick a serialization order, re-execute each committed transaction
//! alongside the oracle, insert *validating reads* (the proof's technical
//! device) at each former grounding read, and compare final databases.

use crate::anomaly::ConflictGraph;
use crate::schedule::{Obj, Op, Schedule, Tx};
use crate::sim::{answer_value, execute, mix, write_value, Db, ExecutionTrace};
use std::collections::BTreeMap;
use std::fmt;

/// The entangled query oracle `O_σ` for one schedule and starting database.
#[derive(Debug, Clone)]
pub struct Oracle {
    /// `Ans_k`: entanglement id → participant → stored answer.
    pub answers: BTreeMap<u32, BTreeMap<Tx, i64>>,
    /// Grounding values per transaction (in read order) recorded in σ —
    /// validating reads must see exactly these for the oracle execution to
    /// be *valid* (Definitions 3.3/3.4).
    pub grounding_values: BTreeMap<Tx, Vec<(Obj, i64)>>,
}

impl Oracle {
    pub fn from_trace(trace: &ExecutionTrace) -> Oracle {
        Oracle {
            answers: trace.answers.clone(),
            grounding_values: trace.grounding_reads.clone(),
        }
    }
}

/// Why a schedule failed the oracle-serializability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TheoremViolation {
    /// The conflict graph is cyclic — no serialization order exists along
    /// the lines of the proof.
    NoTopologicalOrder,
    /// A validating read in `os(σ)` saw a different value than the
    /// corresponding grounding read in σ: the oracle execution is invalid.
    InvalidOracleExecution {
        tx: Tx,
        obj: Obj,
        sigma_value: i64,
        serial_value: i64,
    },
    /// `os(σ)` produced a different final database than σ.
    FinalStateMismatch {
        obj: Obj,
        sigma_value: Option<i64>,
        serial_value: Option<i64>,
    },
}

impl fmt::Display for TheoremViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TheoremViolation::NoTopologicalOrder => {
                write!(f, "conflict graph is cyclic; no serialization order")
            }
            TheoremViolation::InvalidOracleExecution {
                tx,
                obj,
                sigma_value,
                serial_value,
            } => {
                write!(
                    f,
                    "validating read by {tx} on {obj}: σ saw {sigma_value}, serial saw {serial_value}"
                )
            }
            TheoremViolation::FinalStateMismatch {
                obj,
                sigma_value,
                serial_value,
            } => {
                write!(
                    f,
                    "final state differs on {obj}: σ={sigma_value:?}, os(σ)={serial_value:?}"
                )
            }
        }
    }
}

/// A successful serialization: the order used and the shared final state.
#[derive(Debug, Clone)]
pub struct SerializationWitness {
    pub order: Vec<Tx>,
    pub final_db: Db,
}

/// Execute the committed transactions of `s` serially in `order` alongside
/// the oracle, with validating reads. Returns the final database or the
/// violation encountered.
pub fn oracle_serialize(
    s: &Schedule,
    oracle: &Oracle,
    order: &[Tx],
    initial: &Db,
) -> Result<Db, TheoremViolation> {
    let mut db = initial.clone();
    for &tx in order {
        let mut acc: i64 = 1000 + tx.0 as i64;
        let mut counter: u32 = 0;
        let mut ground_idx = 0usize;
        for op in &s.ops {
            match op {
                Op::Read { tx: t, obj } if *t == tx => {
                    let v = db.get(obj).copied().unwrap_or(0);
                    acc = mix(acc, v);
                }
                Op::GroundRead { tx: t, obj } if *t == tx => {
                    // Validating read (proof of Theorem 3.6): the serial
                    // execution re-grounds and must see σ's value for the
                    // stored answer to be valid.
                    let serial_value = db.get(obj).copied().unwrap_or(0);
                    let sigma_value = oracle
                        .grounding_values
                        .get(&tx)
                        .and_then(|v| v.get(ground_idx))
                        .map(|(_, v)| *v)
                        .unwrap_or(0);
                    ground_idx += 1;
                    if serial_value != sigma_value {
                        return Err(TheoremViolation::InvalidOracleExecution {
                            tx,
                            obj: *obj,
                            sigma_value,
                            serial_value,
                        });
                    }
                }
                Op::Entangle { id, txs } if txs.contains(&tx) => {
                    // Oracle call: the stored answer, verbatim (C.3.1).
                    let ans = oracle
                        .answers
                        .get(id)
                        .and_then(|m| m.get(&tx))
                        .copied()
                        .unwrap_or_else(|| answer_value(*id as i64, tx));
                    acc = mix(acc, ans);
                }
                Op::Write { tx: t, obj } if *t == tx => {
                    counter += 1;
                    db.insert(*obj, write_value(tx, acc, counter));
                }
                _ => {}
            }
        }
    }
    Ok(db)
}

/// Definition C.7 / Theorem 3.6, executably: find a serialization order
/// consistent with the conflict graph, build the oracle from σ's own
/// execution, re-execute serially, demand validity and final-state
/// equality.
pub fn check_oracle_serializable(
    s: &Schedule,
    initial: &Db,
) -> Result<SerializationWitness, TheoremViolation> {
    let expanded = s.expand_quasi_reads();
    let graph = ConflictGraph::build(&expanded);
    let order = graph
        .topological_order()
        .ok_or(TheoremViolation::NoTopologicalOrder)?;
    let trace = execute(s, initial);
    let oracle = Oracle::from_trace(&trace);
    let serial_db = oracle_serialize(s, &oracle, &order, initial)?;
    // Compare final databases.
    let keys: std::collections::BTreeSet<Obj> = trace
        .final_db
        .keys()
        .chain(serial_db.keys())
        .copied()
        .collect();
    for k in keys {
        let a = trace.final_db.get(&k).copied();
        let b = serial_db.get(&k).copied();
        if a != b {
            return Err(TheoremViolation::FinalStateMismatch {
                obj: k,
                sigma_value: a,
                serial_value: b,
            });
        }
    }
    Ok(SerializationWitness {
        order,
        final_db: serial_db,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::is_entangled_isolated;

    fn t(n: u32) -> Tx {
        Tx(n)
    }
    fn o(n: u32) -> Obj {
        Obj(n)
    }

    fn example() -> Schedule {
        Schedule::new(vec![
            Op::GroundRead {
                tx: t(1),
                obj: o(0),
            },
            Op::GroundRead {
                tx: t(2),
                obj: o(1),
            },
            Op::Read {
                tx: t(3),
                obj: o(2),
            },
            Op::Entangle {
                id: 1,
                txs: vec![t(1), t(2)],
            },
            Op::Write {
                tx: t(1),
                obj: o(2),
            },
            Op::Write {
                tx: t(2),
                obj: o(3),
            },
            Op::Commit { tx: t(1) },
            Op::Commit { tx: t(2) },
            Op::Commit { tx: t(3) },
        ])
    }

    fn db0() -> Db {
        [(o(0), 5), (o(1), 7), (o(2), 9), (o(3), 11)]
            .into_iter()
            .collect()
    }

    #[test]
    fn c1_example_schedule_is_oracle_serializable() {
        let s = example();
        assert!(is_entangled_isolated(&s));
        let w = check_oracle_serializable(&s, &db0()).unwrap();
        // The conflict edge 3→1 (R3(z) before W1(z)) must be respected.
        let p3 = w.order.iter().position(|&x| x == t(3)).unwrap();
        let p1 = w.order.iter().position(|&x| x == t(1)).unwrap();
        assert!(p3 < p1);
    }

    #[test]
    fn interleaved_but_isolated_schedule_serializes() {
        // Two classical transactions on disjoint objects, interleaved.
        let s = Schedule::new(vec![
            Op::Read {
                tx: t(1),
                obj: o(0),
            },
            Op::Read {
                tx: t(2),
                obj: o(1),
            },
            Op::Write {
                tx: t(1),
                obj: o(0),
            },
            Op::Write {
                tx: t(2),
                obj: o(1),
            },
            Op::Commit { tx: t(1) },
            Op::Commit { tx: t(2) },
        ]);
        assert!(is_entangled_isolated(&s));
        check_oracle_serializable(&s, &db0()).unwrap();
    }

    #[test]
    fn cyclic_schedule_has_no_order() {
        let s = Schedule::new(vec![
            Op::Read {
                tx: t(1),
                obj: o(0),
            },
            Op::Read {
                tx: t(2),
                obj: o(1),
            },
            Op::Write {
                tx: t(1),
                obj: o(1),
            },
            Op::Write {
                tx: t(2),
                obj: o(0),
            },
            Op::Commit { tx: t(1) },
            Op::Commit { tx: t(2) },
        ]);
        assert_eq!(
            check_oracle_serializable(&s, &db0()).unwrap_err(),
            TheoremViolation::NoTopologicalOrder
        );
    }

    #[test]
    fn unrepeatable_quasi_read_breaks_serialization() {
        // Figure 3(b): the raw conflict graph (without quasi-reads) is
        // acyclic, so a naive checker would pick an order — but the
        // execution then fails validation or final-state equality,
        // demonstrating *why* quasi-reads must be part of the conflict
        // graph. With expansion (our default), the order doesn't exist.
        let s = Schedule::new(vec![
            Op::GroundRead {
                tx: t(1),
                obj: o(0),
            },
            Op::GroundRead {
                tx: t(2),
                obj: o(1),
            },
            Op::Entangle {
                id: 1,
                txs: vec![t(1), t(2)],
            },
            Op::Write {
                tx: t(3),
                obj: o(1),
            },
            Op::Commit { tx: t(3) },
            Op::Read {
                tx: t(1),
                obj: o(1),
            },
            Op::Write {
                tx: t(1),
                obj: o(2),
            },
            Op::Commit { tx: t(1) },
            Op::Commit { tx: t(2) },
        ]);
        s.validate().unwrap();
        assert!(!is_entangled_isolated(&s));
        // With quasi-reads expanded, the cycle t1⇄t3 rules out any order.
        assert_eq!(
            check_oracle_serializable(&s, &db0()).unwrap_err(),
            TheoremViolation::NoTopologicalOrder
        );
        // Naive check (no expansion): serialize in raw-graph order and
        // watch the validating read catch the invalid oracle execution.
        let raw_graph = ConflictGraph::build(&s);
        let order = raw_graph.topological_order().expect("raw graph acyclic");
        let trace = execute(&s, &db0());
        let oracle = Oracle::from_trace(&trace);
        let res = oracle_serialize(&s, &oracle, &order, &db0());
        match res {
            Err(TheoremViolation::InvalidOracleExecution { tx, obj, .. }) => {
                assert_eq!(obj, o(1), "Airlines value changed under {tx}");
            }
            Ok(serial_db) => {
                // If validation happened to pass (t3 ordered after the
                // readers), the final DBs must still match — otherwise the
                // naive order was genuinely wrong.
                assert_eq!(
                    serial_db, trace.final_db,
                    "naive order must fail one of the two checks"
                );
            }
            Err(other) => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn widowed_schedule_still_final_state_equivalent_here() {
        // Widowhood is a *semantic* anomaly (the committed partner acted
        // on answers from an aborted process); it does not necessarily
        // break final-state equality in the abstract model. Theorem 3.6 is
        // one-directional: isolated ⇒ serializable, not the converse.
        let s = Schedule::new(vec![
            Op::GroundRead {
                tx: t(1),
                obj: o(0),
            },
            Op::GroundRead {
                tx: t(2),
                obj: o(0),
            },
            Op::Entangle {
                id: 1,
                txs: vec![t(1), t(2)],
            },
            Op::Write {
                tx: t(1),
                obj: o(1),
            },
            Op::Abort { tx: t(2) },
            Op::Commit { tx: t(1) },
        ]);
        assert!(!is_entangled_isolated(&s), "widowed");
        // The check itself may pass — the theorem's converse is false.
        let _ = check_oracle_serializable(&s, &db0());
    }

    #[test]
    fn oracle_preserves_answers_verbatim() {
        let trace = execute(&example(), &db0());
        let oracle = Oracle::from_trace(&trace);
        assert_eq!(oracle.answers[&1][&t(1)], trace.answers[&1][&t(1)]);
        assert_eq!(oracle.grounding_values[&t(2)], vec![(o(1), 7)]);
    }

    #[test]
    fn serialization_respects_write_write_order() {
        // T1 writes x, then T2 overwrites x; both commit. Order must put
        // T1 before T2 and the final value is T2's.
        let s = Schedule::new(vec![
            Op::Write {
                tx: t(1),
                obj: o(0),
            },
            Op::Commit { tx: t(1) },
            Op::Write {
                tx: t(2),
                obj: o(0),
            },
            Op::Commit { tx: t(2) },
        ]);
        let w = check_oracle_serializable(&s, &db0()).unwrap();
        assert_eq!(w.order, vec![t(1), t(2)]);
    }
}
