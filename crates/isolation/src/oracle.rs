//! Oracle-serializability (C.3) as an executable check.
//!
//! [`Oracle::from_trace`] performs the construction of C.3.1: observe σ's
//! execution, record the answers `Ans_k` returned at each entanglement
//! operation, and replay them verbatim during serial re-execution.
//! [`check_oracle_serializable`] then implements Definition C.7 directly:
//! pick a serialization order, re-execute each committed transaction
//! alongside the oracle, insert *validating reads* (the proof's technical
//! device) at each former grounding read, and compare final databases.

use crate::anomaly::ConflictGraph;
use crate::schedule::{Obj, Op, Schedule, Tx};
use crate::sim::{answer_value, execute, mix, write_value, Db, ExecutionTrace};
use std::collections::BTreeMap;
use std::fmt;

/// The entangled query oracle `O_σ` for one schedule and starting database.
#[derive(Debug, Clone)]
pub struct Oracle {
    /// `Ans_k`: entanglement id → participant → stored answer.
    pub answers: BTreeMap<u32, BTreeMap<Tx, i64>>,
    /// Grounding values per transaction (in read order) recorded in σ —
    /// validating reads must see exactly these for the oracle execution to
    /// be *valid* (Definitions 3.3/3.4).
    pub grounding_values: BTreeMap<Tx, Vec<(Obj, i64)>>,
}

impl Oracle {
    pub fn from_trace(trace: &ExecutionTrace) -> Oracle {
        Oracle {
            answers: trace.answers.clone(),
            grounding_values: trace.grounding_reads.clone(),
        }
    }
}

/// Why a schedule failed the oracle-serializability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TheoremViolation {
    /// The conflict graph is cyclic — no serialization order exists along
    /// the lines of the proof.
    NoTopologicalOrder,
    /// A validating read in `os(σ)` saw a different value than the
    /// corresponding grounding read in σ: the oracle execution is invalid.
    InvalidOracleExecution {
        tx: Tx,
        obj: Obj,
        sigma_value: i64,
        serial_value: i64,
    },
    /// `os(σ)` produced a different final database than σ.
    FinalStateMismatch {
        obj: Obj,
        sigma_value: Option<i64>,
        serial_value: Option<i64>,
    },
}

impl fmt::Display for TheoremViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TheoremViolation::NoTopologicalOrder => {
                write!(f, "conflict graph is cyclic; no serialization order")
            }
            TheoremViolation::InvalidOracleExecution {
                tx,
                obj,
                sigma_value,
                serial_value,
            } => {
                write!(
                    f,
                    "validating read by {tx} on {obj}: σ saw {sigma_value}, serial saw {serial_value}"
                )
            }
            TheoremViolation::FinalStateMismatch {
                obj,
                sigma_value,
                serial_value,
            } => {
                write!(
                    f,
                    "final state differs on {obj}: σ={sigma_value:?}, os(σ)={serial_value:?}"
                )
            }
        }
    }
}

/// A successful serialization: the order used and the shared final state.
#[derive(Debug, Clone)]
pub struct SerializationWitness {
    pub order: Vec<Tx>,
    pub final_db: Db,
}

/// Execute the committed transactions of `s` serially in `order` alongside
/// the oracle, with validating reads. Returns the final database or the
/// violation encountered.
pub fn oracle_serialize(
    s: &Schedule,
    oracle: &Oracle,
    order: &[Tx],
    initial: &Db,
) -> Result<Db, TheoremViolation> {
    let mut db = initial.clone();
    for &tx in order {
        let mut acc: i64 = 1000 + tx.0 as i64;
        let mut counter: u32 = 0;
        let mut ground_idx = 0usize;
        for op in &s.ops {
            match op {
                Op::Read { tx: t, obj } if *t == tx => {
                    let v = db.get(obj).copied().unwrap_or(0);
                    acc = mix(acc, v);
                }
                Op::GroundRead { tx: t, obj } if *t == tx => {
                    // Validating read (proof of Theorem 3.6): the serial
                    // execution re-grounds and must see σ's value for the
                    // stored answer to be valid.
                    let serial_value = db.get(obj).copied().unwrap_or(0);
                    let sigma_value = oracle
                        .grounding_values
                        .get(&tx)
                        .and_then(|v| v.get(ground_idx))
                        .map(|(_, v)| *v)
                        .unwrap_or(0);
                    ground_idx += 1;
                    if serial_value != sigma_value {
                        return Err(TheoremViolation::InvalidOracleExecution {
                            tx,
                            obj: *obj,
                            sigma_value,
                            serial_value,
                        });
                    }
                }
                Op::Entangle { id, txs } if txs.contains(&tx) => {
                    // Oracle call: the stored answer, verbatim (C.3.1).
                    let ans = oracle
                        .answers
                        .get(id)
                        .and_then(|m| m.get(&tx))
                        .copied()
                        .unwrap_or_else(|| answer_value(*id as i64, tx));
                    acc = mix(acc, ans);
                }
                Op::Write { tx: t, obj } if *t == tx => {
                    counter += 1;
                    db.insert(*obj, write_value(tx, acc, counter));
                }
                _ => {}
            }
        }
    }
    Ok(db)
}

/// Definition C.7 / Theorem 3.6, executably: find a serialization order
/// consistent with the conflict graph, build the oracle from σ's own
/// execution, re-execute serially, demand validity and final-state
/// equality.
pub fn check_oracle_serializable(
    s: &Schedule,
    initial: &Db,
) -> Result<SerializationWitness, TheoremViolation> {
    let expanded = s.expand_quasi_reads();
    let graph = ConflictGraph::build(&expanded);
    let order = graph
        .topological_order()
        .ok_or(TheoremViolation::NoTopologicalOrder)?;
    let trace = execute(s, initial);
    let oracle = Oracle::from_trace(&trace);
    let serial_db = oracle_serialize(s, &oracle, &order, initial)?;
    // Compare final databases.
    let keys: std::collections::BTreeSet<Obj> = trace
        .final_db
        .keys()
        .chain(serial_db.keys())
        .copied()
        .collect();
    for k in keys {
        let a = trace.final_db.get(&k).copied();
        let b = serial_db.get(&k).copied();
        if a != b {
            return Err(TheoremViolation::FinalStateMismatch {
                obj: k,
                sigma_value: a,
                serial_value: b,
            });
        }
    }
    Ok(SerializationWitness {
        order,
        final_db: serial_db,
    })
}

/// Why a snapshot-read history failed the oracle-serializability
/// extension ([`check_snapshot_serializable`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotViolation {
    /// A transaction with snapshot reads also wrote, grounded or issued
    /// locked reads — outside the model (the engine only routes read-only
    /// classical transactions to the snapshot path).
    NotReadOnly(Tx),
    /// The transaction's visible set is not a consistent cut: it contains
    /// `present` but not `missing`, although `missing` conflict-precedes
    /// `present` — no serial order can make the visible set a prefix.
    InconsistentCut { tx: Tx, missing: Tx, present: Tx },
    /// The locked part of the schedule is itself not oracle-serializable.
    Locked(TheoremViolation),
    /// Placed at its cut in the serial order, the transaction's snapshot
    /// read would have seen a different value than it saw in σ.
    ValueMismatch {
        tx: Tx,
        obj: Obj,
        sigma_value: i64,
        serial_value: i64,
    },
}

impl fmt::Display for SnapshotViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotViolation::NotReadOnly(t) => {
                write!(f, "{t} mixes snapshot reads with locked operations")
            }
            SnapshotViolation::InconsistentCut {
                tx,
                missing,
                present,
            } => write!(
                f,
                "{tx}'s snapshot saw {present} but not {missing}, which conflict-precedes it"
            ),
            SnapshotViolation::Locked(v) => write!(f, "locked sub-schedule: {v}"),
            SnapshotViolation::ValueMismatch {
                tx,
                obj,
                sigma_value,
                serial_value,
            } => write!(
                f,
                "snapshot read by {tx} on {obj}: σ saw {sigma_value}, serial saw {serial_value}"
            ),
        }
    }
}

impl std::error::Error for SnapshotViolation {}

/// Oracle-serializability extended to snapshot reads (the multi-version
/// read path): a valid schedule whose read-only transactions observe
/// committed prefixes remains oracle-serializable **with the readers
/// placed at their cuts**.
///
/// The check decomposes exactly as the engine does:
///
/// 1. strip the snapshot transactions' operations and require the locked
///    remainder to pass [`check_oracle_serializable`] (Definition C.7);
/// 2. require every snapshot transaction's visible set `V` to be a
///    **consistent cut** of the conflict order — downward-closed, so a
///    topological order exists in which `V` is a prefix (cuts taken at
///    later pins are supersets of earlier ones, so one order serves all
///    readers simultaneously);
/// 3. re-execute that order serially and require each snapshot read to
///    see, at its cut, exactly the value it saw in σ.
///
/// Returns the witness order with each snapshot transaction inserted
/// right after its cut. Histories recorded by the engine satisfy this by
/// construction (versions install in commit order; the stable frontier
/// never exposes a half-installed batch); hand-built schedules where a
/// reader observes a non-prefix — e.g. the second of two conflicting
/// writers without the first — are rejected.
pub fn check_snapshot_serializable(
    s: &Schedule,
    initial: &Db,
) -> Result<SerializationWitness, SnapshotViolation> {
    // Identify snapshot transactions and require them read-only.
    let mut snap_txs: std::collections::BTreeSet<Tx> = std::collections::BTreeSet::new();
    for op in &s.ops {
        if let Op::SnapshotPin { tx } | Op::SnapshotRead { tx, .. } = op {
            snap_txs.insert(*tx);
        }
    }
    for op in &s.ops {
        if let Op::Write { tx, .. } | Op::GroundRead { tx, .. } | Op::Read { tx, .. } = op {
            if snap_txs.contains(tx) {
                return Err(SnapshotViolation::NotReadOnly(*tx));
            }
        }
    }

    // 1. The locked remainder must serialize classically.
    let locked = Schedule::new(
        s.ops
            .iter()
            .filter(|op| op.tx().is_none_or(|t| !snap_txs.contains(&t)))
            .cloned()
            .collect(),
    );
    let expanded = locked.expand_quasi_reads();
    let graph = ConflictGraph::build(&expanded);
    let base_order = graph.topological_order().ok_or(SnapshotViolation::Locked(
        TheoremViolation::NoTopologicalOrder,
    ))?;
    check_oracle_serializable(&locked, initial).map_err(SnapshotViolation::Locked)?;

    // Execute the full schedule once: snapshot values and cuts fall out.
    let trace = execute(s, initial);
    let oracle = Oracle::from_trace(&trace);

    // 2. Cut consistency, per committed snapshot transaction. Cuts are
    // nested (committed sets grow monotonically along σ), so sorting
    // writers by "earliest cut that contains them" yields one topological
    // order in which *every* cut is a prefix.
    let committed_snap: Vec<Tx> = snap_txs
        .iter()
        .copied()
        .filter(|t| s.committed().contains(t))
        .collect();
    let locked_nodes: std::collections::BTreeSet<Tx> = base_order.iter().copied().collect();
    let mut cuts: Vec<(Tx, std::collections::BTreeSet<Tx>)> = committed_snap
        .iter()
        .map(|&r| {
            let v: std::collections::BTreeSet<Tx> = trace
                .snapshot_sets
                .get(&r)
                .map(|set| {
                    set.iter()
                        .copied()
                        .filter(|t| locked_nodes.contains(t))
                        .collect()
                })
                .unwrap_or_default();
            (r, v)
        })
        .collect();
    cuts.sort_by_key(|(_, v)| v.len());
    for (r, v) in &cuts {
        for (&a, outs) in &graph.edges {
            for &b in outs {
                if v.contains(&b) && !v.contains(&a) {
                    return Err(SnapshotViolation::InconsistentCut {
                        tx: *r,
                        missing: a,
                        present: b,
                    });
                }
            }
        }
    }

    // Level-partitioned order: stable-sort the base topological order by
    // the earliest cut containing each transaction. Downward closure of
    // every cut keeps the result topological, and the first |V| elements
    // are exactly V for each cut.
    let level = |t: Tx| -> usize {
        cuts.iter()
            .position(|(_, v)| v.contains(&t))
            .unwrap_or(cuts.len())
    };
    let mut order = base_order;
    order.sort_by_key(|&t| level(t)); // stable: base order preserved per level

    // 3. Serial value check: replay the prefix up to each cut and compare
    // the snapshot reads against the serial state there.
    for (r, v) in &cuts {
        let prefix = &order[..v.len()];
        let serial_db = oracle_serialize(&locked, &oracle, prefix, initial)
            .map_err(SnapshotViolation::Locked)?;
        if let Some(reads) = trace.snapshot_reads.get(r) {
            for (obj, sigma_value) in reads {
                let serial_value = serial_db.get(obj).copied().unwrap_or(0);
                if serial_value != *sigma_value {
                    return Err(SnapshotViolation::ValueMismatch {
                        tx: *r,
                        obj: *obj,
                        sigma_value: *sigma_value,
                        serial_value,
                    });
                }
            }
        }
    }

    // Witness: readers inserted right after their cuts (largest first so
    // earlier insertions don't shift later positions).
    let final_db =
        oracle_serialize(&locked, &oracle, &order, initial).map_err(SnapshotViolation::Locked)?;
    for (r, v) in cuts.iter().rev() {
        order.insert(v.len(), *r);
    }
    Ok(SerializationWitness { order, final_db })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::is_entangled_isolated;

    fn t(n: u32) -> Tx {
        Tx(n)
    }
    fn o(n: u32) -> Obj {
        Obj(n)
    }

    fn example() -> Schedule {
        Schedule::new(vec![
            Op::GroundRead {
                tx: t(1),
                obj: o(0),
            },
            Op::GroundRead {
                tx: t(2),
                obj: o(1),
            },
            Op::Read {
                tx: t(3),
                obj: o(2),
            },
            Op::Entangle {
                id: 1,
                txs: vec![t(1), t(2)],
            },
            Op::Write {
                tx: t(1),
                obj: o(2),
            },
            Op::Write {
                tx: t(2),
                obj: o(3),
            },
            Op::Commit { tx: t(1) },
            Op::Commit { tx: t(2) },
            Op::Commit { tx: t(3) },
        ])
    }

    fn db0() -> Db {
        [(o(0), 5), (o(1), 7), (o(2), 9), (o(3), 11)]
            .into_iter()
            .collect()
    }

    #[test]
    fn c1_example_schedule_is_oracle_serializable() {
        let s = example();
        assert!(is_entangled_isolated(&s));
        let w = check_oracle_serializable(&s, &db0()).unwrap();
        // The conflict edge 3→1 (R3(z) before W1(z)) must be respected.
        let p3 = w.order.iter().position(|&x| x == t(3)).unwrap();
        let p1 = w.order.iter().position(|&x| x == t(1)).unwrap();
        assert!(p3 < p1);
    }

    #[test]
    fn interleaved_but_isolated_schedule_serializes() {
        // Two classical transactions on disjoint objects, interleaved.
        let s = Schedule::new(vec![
            Op::Read {
                tx: t(1),
                obj: o(0),
            },
            Op::Read {
                tx: t(2),
                obj: o(1),
            },
            Op::Write {
                tx: t(1),
                obj: o(0),
            },
            Op::Write {
                tx: t(2),
                obj: o(1),
            },
            Op::Commit { tx: t(1) },
            Op::Commit { tx: t(2) },
        ]);
        assert!(is_entangled_isolated(&s));
        check_oracle_serializable(&s, &db0()).unwrap();
    }

    #[test]
    fn cyclic_schedule_has_no_order() {
        let s = Schedule::new(vec![
            Op::Read {
                tx: t(1),
                obj: o(0),
            },
            Op::Read {
                tx: t(2),
                obj: o(1),
            },
            Op::Write {
                tx: t(1),
                obj: o(1),
            },
            Op::Write {
                tx: t(2),
                obj: o(0),
            },
            Op::Commit { tx: t(1) },
            Op::Commit { tx: t(2) },
        ]);
        assert_eq!(
            check_oracle_serializable(&s, &db0()).unwrap_err(),
            TheoremViolation::NoTopologicalOrder
        );
    }

    #[test]
    fn unrepeatable_quasi_read_breaks_serialization() {
        // Figure 3(b): the raw conflict graph (without quasi-reads) is
        // acyclic, so a naive checker would pick an order — but the
        // execution then fails validation or final-state equality,
        // demonstrating *why* quasi-reads must be part of the conflict
        // graph. With expansion (our default), the order doesn't exist.
        let s = Schedule::new(vec![
            Op::GroundRead {
                tx: t(1),
                obj: o(0),
            },
            Op::GroundRead {
                tx: t(2),
                obj: o(1),
            },
            Op::Entangle {
                id: 1,
                txs: vec![t(1), t(2)],
            },
            Op::Write {
                tx: t(3),
                obj: o(1),
            },
            Op::Commit { tx: t(3) },
            Op::Read {
                tx: t(1),
                obj: o(1),
            },
            Op::Write {
                tx: t(1),
                obj: o(2),
            },
            Op::Commit { tx: t(1) },
            Op::Commit { tx: t(2) },
        ]);
        s.validate().unwrap();
        assert!(!is_entangled_isolated(&s));
        // With quasi-reads expanded, the cycle t1⇄t3 rules out any order.
        assert_eq!(
            check_oracle_serializable(&s, &db0()).unwrap_err(),
            TheoremViolation::NoTopologicalOrder
        );
        // Naive check (no expansion): serialize in raw-graph order and
        // watch the validating read catch the invalid oracle execution.
        let raw_graph = ConflictGraph::build(&s);
        let order = raw_graph.topological_order().expect("raw graph acyclic");
        let trace = execute(&s, &db0());
        let oracle = Oracle::from_trace(&trace);
        let res = oracle_serialize(&s, &oracle, &order, &db0());
        match res {
            Err(TheoremViolation::InvalidOracleExecution { tx, obj, .. }) => {
                assert_eq!(obj, o(1), "Airlines value changed under {tx}");
            }
            Ok(serial_db) => {
                // If validation happened to pass (t3 ordered after the
                // readers), the final DBs must still match — otherwise the
                // naive order was genuinely wrong.
                assert_eq!(
                    serial_db, trace.final_db,
                    "naive order must fail one of the two checks"
                );
            }
            Err(other) => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn widowed_schedule_still_final_state_equivalent_here() {
        // Widowhood is a *semantic* anomaly (the committed partner acted
        // on answers from an aborted process); it does not necessarily
        // break final-state equality in the abstract model. Theorem 3.6 is
        // one-directional: isolated ⇒ serializable, not the converse.
        let s = Schedule::new(vec![
            Op::GroundRead {
                tx: t(1),
                obj: o(0),
            },
            Op::GroundRead {
                tx: t(2),
                obj: o(0),
            },
            Op::Entangle {
                id: 1,
                txs: vec![t(1), t(2)],
            },
            Op::Write {
                tx: t(1),
                obj: o(1),
            },
            Op::Abort { tx: t(2) },
            Op::Commit { tx: t(1) },
        ]);
        assert!(!is_entangled_isolated(&s), "widowed");
        // The check itself may pass — the theorem's converse is false.
        let _ = check_oracle_serializable(&s, &db0());
    }

    #[test]
    fn oracle_preserves_answers_verbatim() {
        let trace = execute(&example(), &db0());
        let oracle = Oracle::from_trace(&trace);
        assert_eq!(oracle.answers[&1][&t(1)], trace.answers[&1][&t(1)]);
        assert_eq!(oracle.grounding_values[&t(2)], vec![(o(1), 7)]);
    }

    #[test]
    fn clean_snapshot_history_is_snapshot_serializable() {
        // Writers t1, t2 commit in order; reader t3 pins between them and
        // reads both objects: it must serialize right after t1.
        let s = Schedule::new(vec![
            Op::Write {
                tx: t(1),
                obj: o(0),
            },
            Op::Commit { tx: t(1) },
            Op::SnapshotPin { tx: t(3) },
            Op::Write {
                tx: t(2),
                obj: o(0),
            },
            Op::Commit { tx: t(2) },
            Op::SnapshotRead {
                tx: t(3),
                obj: o(0),
            },
            Op::SnapshotRead {
                tx: t(3),
                obj: o(1),
            },
            Op::Commit { tx: t(3) },
        ]);
        s.validate().unwrap();
        assert!(is_entangled_isolated(&s));
        let w = check_snapshot_serializable(&s, &db0()).unwrap();
        assert_eq!(w.order, vec![t(1), t(3), t(2)], "reader sits at its cut");
    }

    #[test]
    fn snapshot_reader_coexists_with_entangled_pair() {
        let s = Schedule::new(vec![
            Op::GroundRead {
                tx: t(1),
                obj: o(0),
            },
            Op::GroundRead {
                tx: t(2),
                obj: o(1),
            },
            Op::SnapshotPin { tx: t(4) },
            Op::Entangle {
                id: 1,
                txs: vec![t(1), t(2)],
            },
            Op::Write {
                tx: t(1),
                obj: o(2),
            },
            Op::SnapshotRead {
                tx: t(4),
                obj: o(2),
            },
            Op::Write {
                tx: t(2),
                obj: o(3),
            },
            Op::Commit { tx: t(1) },
            Op::Commit { tx: t(2) },
            Op::Commit { tx: t(4) },
        ]);
        s.validate().unwrap();
        let w = check_snapshot_serializable(&s, &db0()).unwrap();
        // The reader pinned before anyone committed: it goes first and
        // sees the initial value of o(2), not t1's in-flight write.
        assert_eq!(w.order[0], t(4));
        let trace = execute(&s, &db0());
        assert_eq!(trace.snapshot_reads[&t(4)], vec![(o(2), 9)]);
    }

    #[test]
    fn inconsistent_cut_rejected() {
        // t1 conflict-precedes t2 (write-write on x), but the reader's
        // schedule position makes it see t2 without t1 — impossible for a
        // committed-prefix snapshot, so we hand-build the commit order
        // that way: C2 before C1 with an edge t1 → t2.
        let s = Schedule::new(vec![
            Op::Write {
                tx: t(1),
                obj: o(0),
            },
            Op::Write {
                tx: t(2),
                obj: o(0),
            },
            Op::Commit { tx: t(2) },
            Op::SnapshotPin { tx: t(3) },
            Op::SnapshotRead {
                tx: t(3),
                obj: o(0),
            },
            Op::Commit { tx: t(1) },
            Op::Commit { tx: t(3) },
        ]);
        s.validate().unwrap();
        assert_eq!(
            check_snapshot_serializable(&s, &db0()).unwrap_err(),
            SnapshotViolation::InconsistentCut {
                tx: t(3),
                missing: t(1),
                present: t(2),
            }
        );
    }

    #[test]
    fn snapshot_tx_with_writes_rejected() {
        let s = Schedule::new(vec![
            Op::SnapshotRead {
                tx: t(1),
                obj: o(0),
            },
            Op::Write {
                tx: t(1),
                obj: o(0),
            },
            Op::Commit { tx: t(1) },
        ]);
        assert_eq!(
            check_snapshot_serializable(&s, &db0()).unwrap_err(),
            SnapshotViolation::NotReadOnly(t(1))
        );
    }

    #[test]
    fn nested_cuts_share_one_witness_order() {
        // Two readers with different pins: cuts {} and {1}; both must fit
        // one serial order as prefixes.
        let s = Schedule::new(vec![
            Op::SnapshotPin { tx: t(3) },
            Op::Write {
                tx: t(1),
                obj: o(0),
            },
            Op::Commit { tx: t(1) },
            Op::SnapshotPin { tx: t(4) },
            Op::SnapshotRead {
                tx: t(3),
                obj: o(0),
            },
            Op::SnapshotRead {
                tx: t(4),
                obj: o(0),
            },
            Op::Write {
                tx: t(2),
                obj: o(0),
            },
            Op::Commit { tx: t(2) },
            Op::Commit { tx: t(3) },
            Op::Commit { tx: t(4) },
        ]);
        s.validate().unwrap();
        let w = check_snapshot_serializable(&s, &db0()).unwrap();
        assert_eq!(w.order, vec![t(3), t(1), t(4), t(2)]);
        let trace = execute(&s, &db0());
        assert_eq!(trace.snapshot_reads[&t(3)], vec![(o(0), 5)], "initial");
        assert_eq!(
            trace.snapshot_reads[&t(4)],
            vec![(o(0), trace.writes[0].2)],
            "t1's committed write"
        );
    }

    #[test]
    fn serialization_respects_write_write_order() {
        // T1 writes x, then T2 overwrites x; both commit. Order must put
        // T1 before T2 and the final value is T2's.
        let s = Schedule::new(vec![
            Op::Write {
                tx: t(1),
                obj: o(0),
            },
            Op::Commit { tx: t(1) },
            Op::Write {
                tx: t(2),
                obj: o(0),
            },
            Op::Commit { tx: t(2) },
        ]);
        let w = check_oracle_serializable(&s, &db0()).unwrap();
        assert_eq!(w.order, vec![t(1), t(2)]);
    }
}
