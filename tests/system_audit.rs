//! Cross-crate system tests: isolation audits of real concurrent
//! executions, end-to-end crash recovery, and oracle-based solo execution
//! (Assumption 3.5) against the same data the scheduler uses.

use entangled_txn::{
    run_with_oracle, ClientId, Engine, EngineConfig, GroundingOracle, IsolationMode, Program,
    Scheduler, SchedulerConfig, Txn, TxnStatus,
};
use std::sync::Arc;
use youtopia_isolation::{find_anomalies, is_entangled_isolated, Anomaly, ConflictGraph};
use youtopia_workload::{
    engine_config, generate, scheduler_for, Family, SocialGraph, TravelData, TravelParams,
    WorkloadMode,
};

fn small_data(seed: u64) -> TravelData {
    let params = TravelParams {
        users: 60,
        cities: 5,
        flights: 80,
        seed,
    };
    let mut d = TravelData::generate(params, SocialGraph::slashdot_like(60, seed));
    d.align_pair_hometowns(seed);
    d
}

/// Every mixed concurrent execution must produce an entangled-isolated
/// history whose conflict graph admits a serialization order (the engine
/// enforces what Appendix C demands).
#[test]
fn concurrent_histories_are_entangled_isolated() {
    for seed in [1u64, 2, 3] {
        let d = small_data(seed);
        let engine = d.build_engine(engine_config(
            WorkloadMode::Transactional,
            entangled_txn::CostModel::ZERO,
            true,
        ));
        let mut sched = scheduler_for(engine, 6);
        for p in generate(Family::Entangled, &d, 30, seed) {
            sched.submit(p);
        }
        for p in generate(Family::Social, &d, 10, seed) {
            sched.submit(p);
        }
        sched.drain();
        let schedule = sched.engine.recorder.schedule();
        schedule
            .validate()
            .unwrap_or_else(|e| panic!("seed {seed}: invalid history {e}"));
        let anomalies = find_anomalies(&schedule.expand_quasi_reads());
        assert!(anomalies.is_empty(), "seed {seed}: {anomalies:?}");
        // A serialization order exists (Theorem 3.6's conclusion).
        let graph = ConflictGraph::build(&schedule.expand_quasi_reads());
        assert!(graph.topological_order().is_some(), "seed {seed}");
    }
}

/// Disabling group commit (ablation Ab2) and injecting a rolling-back
/// partner yields a widowed transaction, visible in the audit.
#[test]
fn widow_ablation_is_caught_by_audit() {
    let engine = Arc::new(Engine::new(EngineConfig {
        isolation: IsolationMode::AllowWidows,
        ..EngineConfig::default()
    }));
    engine
        .setup(
            "CREATE TABLE Flights (fno INT, dest TEXT);
             CREATE TABLE Reserve (name TEXT, fno INT);
             INSERT INTO Flights VALUES (1, 'LA');",
        )
        .expect("setup");
    let mut sched = Scheduler::new(engine.clone(), SchedulerConfig::default());
    sched.submit(
        Program::parse(
            "BEGIN; SELECT 'A', fno AS @f INTO ANSWER R
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA')
             AND ('B', fno) IN ANSWER R CHOOSE 1;
             INSERT INTO Reserve (name, fno) VALUES ('A', @f); COMMIT;",
        )
        .expect("parse"),
    );
    sched.submit(
        Program::parse(
            "BEGIN; SELECT 'B', fno INTO ANSWER R
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA')
             AND ('A', fno) IN ANSWER R CHOOSE 1;
             ROLLBACK; COMMIT;",
        )
        .expect("parse"),
    );
    let report = sched.run_once();
    assert_eq!(report.committed, 1, "survivor commits under AllowWidows");
    let schedule = engine.recorder.schedule();
    let anomalies = find_anomalies(&schedule.expand_quasi_reads());
    assert!(
        anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::WidowedTransaction { .. })),
        "{anomalies:?}"
    );
}

/// End-to-end durability: run a workload, crash, recover — the database
/// matches its pre-crash canonical state exactly.
#[test]
fn crash_after_workload_preserves_all_committed_state() {
    let d = small_data(9);
    let engine = d.build_engine(engine_config(
        WorkloadMode::Transactional,
        entangled_txn::CostModel::ZERO,
        false,
    ));
    let mut sched = scheduler_for(engine, 4);
    for p in generate(Family::Entangled, &d, 30, 9) {
        sched.submit(p);
    }
    for p in generate(Family::NoSocial, &d, 10, 9) {
        sched.submit(p);
    }
    let stats = sched.drain();
    assert!(stats.committed >= 36, "{stats:?}");
    let before = sched.engine.with_db(|db| db.canonical());
    let widowed = sched.engine.crash_and_recover().expect("log readable");
    assert!(widowed.is_empty(), "engine never half-commits a group");
    let after = sched.engine.with_db(|db| db.canonical());
    assert_eq!(before, after, "recovery must reproduce the pre-crash state");
}

/// Assumption 3.5 (oracle consistency) on workload data: any entangled
/// program from the generator can execute alone with a valid oracle and
/// leaves consistent bookings.
#[test]
fn workload_programs_run_solo_with_grounding_oracle() {
    let d = small_data(4);
    let engine = d.build_engine(engine_config(
        WorkloadMode::Transactional,
        entangled_txn::CostModel::ZERO,
        true,
    ));
    let programs = generate(Family::Entangled, &d, 6, 4);
    let mut committed = 0;
    for p in programs {
        let mut txn = Txn::new(ClientId(99), engine.alloc_tx(), p);
        if run_with_oracle(&engine, &mut txn, &mut GroundingOracle).is_ok() {
            assert_eq!(txn.status, TxnStatus::Committed);
            committed += 1;
        }
    }
    assert!(committed >= 4, "most solo executions succeed: {committed}");
    engine.with_db(|db| {
        for row in db.canonical_rows("Reserve").expect("table") {
            let hits = db
                .select_eq("Flight", &[("fid", row[1].clone())])
                .expect("q");
            assert_eq!(hits.len(), 1, "oracle answers kept bookings consistent");
        }
    });
    // Oracle executions leave valid, isolated histories too.
    let schedule = engine.recorder.schedule();
    schedule.validate().expect("valid");
    assert!(is_entangled_isolated(&schedule));
}

/// The six Figure 6(a) workload variants all complete on a shared engine
/// configuration matrix (the evaluation's precondition).
#[test]
fn all_six_workload_variants_complete() {
    let d = small_data(6);
    for family in Family::ALL {
        for mode in [WorkloadMode::Transactional, WorkloadMode::QueryOnly] {
            let engine = d.build_engine(engine_config(mode, entangled_txn::CostModel::ZERO, false));
            let mut sched = scheduler_for(engine, 4);
            for p in generate(family, &d, 20, 6) {
                sched.submit(p);
            }
            let stats = sched.drain();
            assert!(
                stats.committed >= 18,
                "{}-{:?}: {stats:?}",
                family.label(),
                mode
            );
        }
    }
}
