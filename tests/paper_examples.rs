//! Integration tests reproducing the paper's worked examples end-to-end
//! through the public API: Figure 1 (mutual constraint satisfaction),
//! Figure 2 (the two-query travel transaction), Figure 3 (both anomalies
//! and their prevention), Figure 4 (the three-transaction run).

use entangled_txn::{
    Engine, EngineConfig, IsolationMode, Program, Scheduler, SchedulerConfig, StepOutcome,
    TxnStatus,
};
use std::sync::Arc;
use std::time::Duration;
use youtopia_storage::Value;

fn fig1_engine(config: EngineConfig) -> Arc<Engine> {
    let engine = Arc::new(Engine::new(config));
    engine
        .setup(
            "CREATE TABLE Flights (fno INT, fdate DATE, dest TEXT);
             CREATE TABLE Airlines (fno INT, airline TEXT);
             CREATE TABLE Reserve (name TEXT, fno INT);
             INSERT INTO Flights VALUES (122, '2011-05-03', 'LA');
             INSERT INTO Flights VALUES (123, '2011-05-04', 'LA');
             INSERT INTO Flights VALUES (124, '2011-05-03', 'LA');
             INSERT INTO Flights VALUES (235, '2011-05-05', 'Paris');
             INSERT INTO Airlines VALUES (122, 'United');
             INSERT INTO Airlines VALUES (123, 'United');
             INSERT INTO Airlines VALUES (124, 'USAir');
             INSERT INTO Airlines VALUES (235, 'Delta');",
        )
        .expect("setup");
    engine
}

fn mickey() -> Program {
    Program::parse(
        "BEGIN WITH TIMEOUT 10 SECONDS;
         SELECT 'Mickey', fno AS @fno, fdate INTO ANSWER Reservation
         WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA')
         AND ('Minnie', fno, fdate) IN ANSWER Reservation CHOOSE 1;
         INSERT INTO Reserve (name, fno) VALUES ('Mickey', @fno);
         COMMIT;",
    )
    .expect("parse")
}

fn minnie() -> Program {
    Program::parse(
        "BEGIN WITH TIMEOUT 10 SECONDS;
         SELECT 'Minnie', fno AS @fno, fdate INTO ANSWER Reservation
         WHERE fno, fdate IN (SELECT fno, fdate FROM Flights F, Airlines A
                              WHERE F.dest='LA' AND F.fno = A.fno AND A.airline = 'United')
         AND ('Mickey', fno, fdate) IN ANSWER Reservation CHOOSE 1;
         INSERT INTO Reserve (name, fno) VALUES ('Minnie', @fno);
         COMMIT;",
    )
    .expect("parse")
}

/// Figure 1: the system must choose flight 122 or 123 (a United LA flight)
/// for BOTH queries — mutual constraint satisfaction.
#[test]
fn figure1_mutual_constraint_satisfaction() {
    let engine = fig1_engine(EngineConfig::default());
    let mut sched = Scheduler::new(engine.clone(), SchedulerConfig::default());
    sched.submit(mickey());
    sched.submit(minnie());
    let report = sched.run_once();
    assert_eq!(report.committed, 2);
    engine.with_db(|db| {
        let rows = db.canonical_rows("Reserve").expect("table");
        assert_eq!(rows.len(), 2);
        let flights: Vec<i64> = rows.iter().map(|r| r[1].as_int().expect("int")).collect();
        assert_eq!(flights[0], flights[1], "same flight for both");
        assert!(
            flights[0] == 122 || flights[0] == 123,
            "must be a United LA flight, got {}",
            flights[0]
        );
    });
}

/// Figure 2: the arrival day flows from the flight answer through
/// `SET @StayLength = '2011-05-06' - @ArrivalDay` into the hotel
/// coordination.
#[test]
fn figure2_host_variables_thread_between_queries() {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    engine
        .setup(
            "CREATE TABLE Flights (fno INT, fdate DATE, dest TEXT);
             CREATE TABLE Hotels (hid INT, location TEXT);
             CREATE TABLE Rooms (name TEXT, hid INT, nights INT);
             INSERT INTO Flights VALUES (122, '2011-05-03', 'LA');
             INSERT INTO Hotels VALUES (7, 'LA');",
        )
        .expect("setup");
    let prog = |me: &str, other: &str| {
        Program::parse(&format!(
            "BEGIN WITH TIMEOUT 10 SECONDS;
             SELECT '{me}', fno, fdate AS @ArrivalDay INTO ANSWER FlightRes
             WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA')
             AND ('{other}', fno, fdate) IN ANSWER FlightRes CHOOSE 1;
             SET @StayLength = '2011-05-06' - @ArrivalDay;
             SELECT '{me}', hid AS @hid, @ArrivalDay, @StayLength INTO ANSWER HotelRes
             WHERE hid IN (SELECT hid FROM Hotels WHERE location='LA')
             AND ('{other}', hid, @ArrivalDay, @StayLength) IN ANSWER HotelRes CHOOSE 1;
             INSERT INTO Rooms (name, hid, nights) VALUES ('{me}', @hid, @StayLength);
             COMMIT;"
        ))
        .expect("parse")
    };
    let mut sched = Scheduler::new(engine.clone(), SchedulerConfig::default());
    sched.submit(prog("Mickey", "Minnie"));
    sched.submit(prog("Minnie", "Mickey"));
    let report = sched.run_once();
    assert_eq!(report.committed, 2, "{report:?}");
    engine.with_db(|db| {
        let rooms = db.canonical_rows("Rooms").expect("table");
        // Arrival May 3, departure May 6: three nights.
        assert_eq!(rooms[0][2], Value::Int(3));
        assert_eq!(rooms[1][2], Value::Int(3));
        assert_eq!(rooms[0][1], rooms[1][1], "same hotel");
    });
}

/// Figure 3(a): Minnie aborts after entangling — Mickey must not commit
/// (group abort), and the database keeps none of the pair's effects.
#[test]
fn figure3a_widow_prevention() {
    let engine = fig1_engine(EngineConfig::default());
    let mut sched = Scheduler::new(engine.clone(), SchedulerConfig::default());
    sched.submit(mickey());
    sched.submit(
        Program::parse(
            "BEGIN WITH TIMEOUT 10 SECONDS;
             SELECT 'Minnie', fno AS @fno, fdate INTO ANSWER Reservation
             WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA')
             AND ('Mickey', fno, fdate) IN ANSWER Reservation CHOOSE 1;
             ROLLBACK;
             COMMIT;",
        )
        .expect("parse"),
    );
    let report = sched.run_once();
    assert_eq!(report.committed, 0, "widow prevented");
    engine.with_db(|db| {
        assert_eq!(db.table("Reserve").expect("t").len(), 0);
    });
    // No widowed-transaction anomaly in the recorded history.
    let schedule = engine.recorder.schedule();
    let anomalies = youtopia_isolation::find_anomalies(&schedule.expand_quasi_reads());
    assert!(
        !anomalies
            .iter()
            .any(|a| matches!(a, youtopia_isolation::Anomaly::WidowedTransaction { .. })),
        "{anomalies:?}"
    );
}

/// Figure 3(b): while Minnie's grounding read lock on `Airlines` is held
/// (Strict 2PL), Donald's insert into `Airlines` must block — exactly the
/// §3.3.3 prevention argument.
#[test]
fn figure3b_grounding_lock_blocks_donalds_write() {
    let cfg = EngineConfig {
        lock_timeout: Duration::from_millis(80),
        ..EngineConfig::default()
    };
    let engine = fig1_engine(cfg);
    let mut sched = Scheduler::new(engine.clone(), SchedulerConfig::default());
    sched.submit(mickey());
    sched.submit(minnie());
    // Run Mickey & Minnie only through their entangled query evaluation by
    // injecting Donald DURING the run: simplest faithful variant — after
    // the pair commits, locks are gone; so instead check at engine level.
    let _ = sched;

    // Engine-level: evaluate the pair's queries (grounding locks taken),
    // then try Donald's write before commit.
    let engine = fig1_engine(EngineConfig {
        lock_timeout: Duration::from_millis(80),
        ..EngineConfig::default()
    });
    let mut t1 = entangled_txn::Txn::new(entangled_txn::ClientId(1), engine.alloc_tx(), mickey());
    let mut t2 = entangled_txn::Txn::new(entangled_txn::ClientId(2), engine.alloc_tx(), minnie());
    engine.begin(&mut t1);
    engine.begin(&mut t2);
    assert_eq!(engine.run_until_block(&mut t1), StepOutcome::Blocked);
    assert_eq!(engine.run_until_block(&mut t2), StepOutcome::Blocked);
    let report = engine.evaluate_queries(&mut [&mut t1, &mut t2]);
    assert_eq!(report.answered, 2);

    // Donald tries to add flight 125 on United (the Fig. 3(b) write).
    let mut donald = entangled_txn::Txn::new(
        entangled_txn::ClientId(3),
        engine.alloc_tx(),
        Program::parse(
            "BEGIN; INSERT INTO Airlines (fno, airline) VALUES (125, 'United'); COMMIT;",
        )
        .expect("parse"),
    );
    engine.begin(&mut donald);
    assert_eq!(
        engine.run_until_block(&mut donald),
        StepOutcome::Aborted,
        "Donald must block on Minnie's grounding lock and time out"
    );
    assert!(matches!(
        donald.status,
        TxnStatus::Aborted(entangled_txn::EngineError::Lock(_))
    ));

    // After the pair commits, Donald's retry succeeds.
    engine.run_until_block(&mut t1);
    engine.run_until_block(&mut t2);
    engine.commit_group(&mut [&mut t1, &mut t2]);
    let mut donald2 = entangled_txn::Txn::new(
        entangled_txn::ClientId(4),
        engine.alloc_tx(),
        Program::parse(
            "BEGIN; INSERT INTO Airlines (fno, airline) VALUES (125, 'United'); COMMIT;",
        )
        .expect("parse"),
    );
    engine.begin(&mut donald2);
    assert_eq!(engine.run_until_block(&mut donald2), StepOutcome::Ready);
    engine.commit_group(&mut [&mut donald2]);
}

/// Under the relaxed isolation mode (read locks released early), Donald's
/// write goes through mid-entanglement and the recorded history exhibits
/// the unrepeatable quasi-read as a conflict cycle.
#[test]
fn figure3b_relaxed_mode_admits_the_anomaly() {
    let engine = fig1_engine(EngineConfig {
        isolation: IsolationMode::EarlyReadLockRelease,
        ..EngineConfig::default()
    });
    // Mickey grounds on Flights only, then explicitly reads Airlines after
    // entanglement (his §3.3.3 "check which flights United operates").
    let mickey_checks = Program::parse(
        "BEGIN WITH TIMEOUT 10 SECONDS;
         SELECT 'Mickey', fno AS @fno, fdate INTO ANSWER Reservation
         WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA')
         AND ('Minnie', fno, fdate) IN ANSWER Reservation CHOOSE 1;
         SELECT * FROM Airlines WHERE airline = 'United';
         COMMIT;",
    )
    .expect("parse");
    let mut t1 =
        entangled_txn::Txn::new(entangled_txn::ClientId(1), engine.alloc_tx(), mickey_checks);
    let mut t2 = entangled_txn::Txn::new(entangled_txn::ClientId(2), engine.alloc_tx(), minnie());
    engine.begin(&mut t1);
    engine.begin(&mut t2);
    engine.run_until_block(&mut t1);
    engine.run_until_block(&mut t2);
    let report = engine.evaluate_queries(&mut [&mut t1, &mut t2]);
    assert_eq!(report.answered, 2);

    // Donald's write lands between Minnie's grounding read and Mickey's
    // explicit read — possible because read locks were released early.
    let mut donald = entangled_txn::Txn::new(
        entangled_txn::ClientId(3),
        engine.alloc_tx(),
        Program::parse(
            "BEGIN; INSERT INTO Airlines (fno, airline) VALUES (125, 'United'); COMMIT;",
        )
        .expect("parse"),
    );
    engine.begin(&mut donald);
    assert_eq!(engine.run_until_block(&mut donald), StepOutcome::Ready);
    engine.commit_group(&mut [&mut donald]);

    // Mickey resumes and reads Airlines: unrepeatable quasi-read.
    assert_eq!(engine.run_until_block(&mut t1), StepOutcome::Ready);
    assert_eq!(engine.run_until_block(&mut t2), StepOutcome::Ready);
    engine.commit_group(&mut [&mut t1, &mut t2]);

    let schedule = engine.recorder.schedule();
    schedule.validate().expect("valid");
    assert!(
        !youtopia_isolation::is_entangled_isolated(&schedule),
        "the relaxed mode must exhibit the Fig. 3(b) anomaly:\n{schedule}"
    );
}

/// Figure 4 at the scheduler level with several connection counts.
#[test]
fn figure4_run_walkthrough_any_connection_count() {
    for connections in [1usize, 3] {
        let engine = fig1_engine(EngineConfig::default());
        let mut sched = Scheduler::new(
            engine.clone(),
            SchedulerConfig {
                connections,
                ..SchedulerConfig::default()
            },
        );
        sched.submit(mickey());
        sched.submit(
            Program::parse(
                "BEGIN WITH TIMEOUT 300 MS;
                 SELECT 'Donald', fno AS @fno, fdate INTO ANSWER Reservation
                 WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA')
                 AND ('Daffy', fno, fdate) IN ANSWER Reservation CHOOSE 1;
                 INSERT INTO Reserve (name, fno) VALUES ('Donald', @fno);
                 COMMIT;",
            )
            .expect("parse"),
        );
        let r1 = sched.run_once();
        assert_eq!(r1.committed, 0, "c={connections}");
        sched.submit(minnie());
        let r2 = sched.run_once();
        assert_eq!(r2.committed, 2, "c={connections}: {r2:?}");
        std::thread::sleep(Duration::from_millis(320));
        let stats = sched.drain();
        assert_eq!(stats.committed, 2);
        assert_eq!(stats.failed, 1, "Donald times out");
    }
}
