//! `cargo xtask lint` — the repo's custom source gate.
//!
//! Dependency-free (plain `std`) lexical checks that `rustc`/`clippy`
//! cannot express, enforcing the architectural rules DESIGN.md documents:
//!
//! 1. **Layering DAG** — each workspace crate's `[dependencies]` /
//!    `[dev-dependencies]` may only name the workspace crates below it
//!    (storage never depends on core, the lock manager depends on
//!    nothing, …). Shim crates (`shims/`) are leaf stand-ins for
//!    crates.io packages and are always allowed.
//! 2. **Shim boundary** — `std::sync` blocking primitives (`Mutex`,
//!    `RwLock`, `Condvar`, `Barrier`, `Once`, `OnceLock`, `mpsc`) are
//!    banned in `crates/`; the workspace standardizes on the
//!    `parking_lot` shim so lock behaviour (no poisoning, fairness) is
//!    uniform. `Arc` and the atomics are fine.
//! 3. **WAL call sites** — `Wal::append*`/`publish` may only be called
//!    from the WAL crate itself and the engine's commit/checkpoint paths
//!    (`crates/core/src/engine.rs`). Everything else must go through the
//!    engine, or recovery replays records nobody logged coherently.
//! 4. **Unwrap ratchet** — `.unwrap()`/`.expect(` counts in the
//!    commit/recovery hot paths (`engine.rs`, `wal/recover.rs`,
//!    production code above the `#[cfg(test)]` line) are capped by
//!    `xtask/lint-baseline.txt`; the baseline may only go down.
//!
//! Exit status is non-zero on any violation, with one line per finding.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        other => {
            eprintln!(
                "usage: cargo xtask lint\n  (got {:?})",
                other.unwrap_or("<nothing>")
            );
            ExitCode::from(2)
        }
    }
}

fn lint() -> ExitCode {
    let root = repo_root();
    let mut findings: Vec<String> = Vec::new();
    check_layering(&root, &mut findings);
    check_std_sync(&root, &mut findings);
    check_wal_call_sites(&root, &mut findings);
    check_unwrap_ratchet(&root, &mut findings);
    if findings.is_empty() {
        println!("xtask lint: ok (layering DAG, shim boundary, WAL call sites, unwrap ratchet)");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("lint: {f}");
        }
        eprintln!("xtask lint: {} violation(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// `cargo xtask` runs with the workspace root as cwd; fall back to
/// `CARGO_MANIFEST_DIR/..` when invoked directly.
fn repo_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    if cwd.join("crates").is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent")
        .to_path_buf()
}

// ---- rule 1: layering DAG -------------------------------------------------

/// The allowed workspace-internal dependencies, per crate. This *is* the
/// layering DAG from DESIGN.md — edit deliberately.
fn allowed_deps() -> BTreeMap<&'static str, Vec<&'static str>> {
    let mut m = BTreeMap::new();
    // Leaves: no workspace dependencies at all.
    m.insert("youtopia-storage", vec![]);
    m.insert("youtopia-lock", vec![]);
    m.insert("youtopia-isolation", vec![]);
    // Mid layers.
    m.insert("youtopia-sql", vec!["youtopia-storage"]);
    m.insert("youtopia-wal", vec!["youtopia-storage"]);
    m.insert(
        "youtopia-entangle",
        vec!["youtopia-sql", "youtopia-storage"],
    );
    m.insert("youtopia-audit", vec!["youtopia-lock"]);
    // The engine sits on everything below it.
    m.insert(
        "entangled-txn",
        vec![
            "youtopia-audit",
            "youtopia-entangle",
            "youtopia-isolation",
            "youtopia-lock",
            "youtopia-sql",
            "youtopia-storage",
            "youtopia-wal",
        ],
    );
    m.insert(
        "youtopia-workload",
        vec!["entangled-txn", "youtopia-storage"],
    );
    m.insert(
        "youtopia-bench",
        vec![
            "entangled-txn",
            "youtopia-audit",
            "youtopia-entangle",
            "youtopia-isolation",
            "youtopia-lock",
            "youtopia-sql",
            "youtopia-storage",
            "youtopia-wal",
            "youtopia-workload",
        ],
    );
    // The umbrella re-exports every layer by design; xtask depends on
    // nothing.
    m.insert("entangled-transactions", all_workspace_crates());
    m.insert("xtask", vec![]);
    m
}

fn all_workspace_crates() -> Vec<&'static str> {
    vec![
        "youtopia-storage",
        "youtopia-lock",
        "youtopia-audit",
        "youtopia-wal",
        "youtopia-sql",
        "youtopia-entangle",
        "youtopia-isolation",
        "entangled-txn",
        "youtopia-workload",
        "youtopia-bench",
    ]
}

fn check_layering(root: &Path, findings: &mut Vec<String>) {
    let allowed = allowed_deps();
    let mut manifests: Vec<PathBuf> = vec![root.join("Cargo.toml"), root.join("xtask/Cargo.toml")];
    for entry in list_dir(&root.join("crates")) {
        let m = entry.join("Cargo.toml");
        if m.is_file() {
            manifests.push(m);
        }
    }
    for manifest in manifests {
        let Ok(text) = std::fs::read_to_string(&manifest) else {
            findings.push(format!("{}: unreadable manifest", manifest.display()));
            continue;
        };
        let Some(name) = package_name(&text) else {
            findings.push(format!("{}: no [package] name", manifest.display()));
            continue;
        };
        let Some(allow) = allowed.get(name.as_str()) else {
            findings.push(format!(
                "{}: crate '{name}' is not in the layering DAG (xtask/src/main.rs allowed_deps) — add it deliberately",
                manifest.display()
            ));
            continue;
        };
        for dep in workspace_deps(&text) {
            // The umbrella's dev-dependency on the bench harness is the
            // one sanctioned upward edge outside the DAG map.
            if name == "entangled-transactions" && dep == "youtopia-bench" {
                continue;
            }
            if !allow.contains(&dep.as_str()) {
                findings.push(format!(
                    "{}: layering violation — '{name}' must not depend on '{dep}'",
                    manifest.display()
                ));
            }
        }
    }
}

fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return Some(rest.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Workspace-internal crates named in `[dependencies]`/`[dev-dependencies]`
/// (dotted `dependencies.foo` tables included).
fn workspace_deps(manifest: &str) -> Vec<String> {
    let workspace: Vec<&str> = all_workspace_crates();
    let mut out = Vec::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]"
                || line == "[dev-dependencies]"
                || line == "[build-dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let key = line.split(['=', '.']).next().unwrap_or("").trim();
        if workspace.contains(&key) {
            out.push(key.to_string());
        }
    }
    out
}

// ---- rule 2: std::sync primitive ban --------------------------------------

const BANNED_SYNC: &[&str] = &[
    "Mutex", "RwLock", "Condvar", "Barrier", "Once", "OnceLock", "OnceCell", "mpsc",
];

fn line_uses_banned_sync(line: &str) -> Option<&'static str> {
    let code = line.split("//").next().unwrap_or(line);
    for (i, _) in code.match_indices("std::sync::") {
        let after = &code[i + "std::sync::".len()..];
        for b in BANNED_SYNC {
            if let Some(tail) = after.strip_prefix(b) {
                // `Once` must not match `OnceLock`-style longer names it
                // doesn't own (the list has them separately).
                if tail.starts_with(char::is_alphanumeric) || tail.starts_with('_') {
                    continue;
                }
                return Some(b);
            }
        }
        // Brace imports: `use std::sync::{Arc, Mutex}`.
        if let Some(group) = after.strip_prefix('{').and_then(|g| g.split('}').next()) {
            for item in group.split(',') {
                let item = item.split_whitespace().next().unwrap_or("");
                let item = item.rsplit("::").next().unwrap_or(item);
                if let Some(b) = BANNED_SYNC.iter().find(|b| item == **b) {
                    return Some(b);
                }
            }
        }
    }
    None
}

fn check_std_sync(root: &Path, findings: &mut Vec<String>) {
    for file in rust_sources(&root.join("crates")) {
        let Ok(text) = std::fs::read_to_string(&file) else {
            continue;
        };
        for (i, line) in text.lines().enumerate() {
            if let Some(b) = line_uses_banned_sync(line) {
                findings.push(format!(
                    "{}:{}: std::sync::{b} is banned outside shims/ — use the parking_lot/crossbeam shims",
                    file.strip_prefix(root).unwrap_or(&file).display(),
                    i + 1
                ));
            }
        }
    }
}

// ---- rule 3: WAL call sites -----------------------------------------------

/// Files allowed to call `Wal::append*`/`publish`: the WAL crate itself
/// and the engine's commit/checkpoint paths. (Benches under `benches/`
/// construct private WALs and are outside the `src/` scan by
/// construction.)
fn wal_call_allowed(rel: &Path) -> bool {
    let p = rel.to_string_lossy().replace('\\', "/");
    p.starts_with("crates/wal/") || p == "crates/core/src/engine.rs"
}

fn line_calls_wal(line: &str) -> Option<&'static str> {
    let code = line.split("//").next().unwrap_or(line);
    if code.contains(".publish(") {
        return Some("publish");
    }
    if code.contains(".append_sync(") {
        return Some("append_sync");
    }
    // `.append(` alone would catch `Vec::append`; require a wal-ish
    // receiver.
    for pat in [
        "wal.append(",
        "wal().append(",
        "shard(s).append(",
        ".wal.append(",
    ] {
        if code.contains(pat) {
            return Some("append");
        }
    }
    None
}

fn check_wal_call_sites(root: &Path, findings: &mut Vec<String>) {
    for file in rust_sources(&root.join("crates")) {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        if wal_call_allowed(&rel) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&file) else {
            continue;
        };
        for (i, line) in text.lines().enumerate() {
            if let Some(which) = line_calls_wal(line) {
                findings.push(format!(
                    "{}:{}: Wal::{which} outside the engine commit/checkpoint paths — route durability through the engine",
                    rel.display(),
                    i + 1
                ));
            }
        }
    }
}

// ---- rule 4: unwrap ratchet -----------------------------------------------

/// `.unwrap()`/`.expect(` occurrences in production code: everything above
/// the file's `#[cfg(test)]` line (the tests module is idiomatic unwrap
/// territory).
fn count_unwraps(text: &str) -> usize {
    let mut n = 0;
    for line in text.lines() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let code = line.split("//").next().unwrap_or(line);
        n += code.matches(".unwrap()").count() + code.matches(".expect(").count();
    }
    n
}

fn check_unwrap_ratchet(root: &Path, findings: &mut Vec<String>) {
    let baseline_path = root.join("xtask/lint-baseline.txt");
    let Ok(baseline) = std::fs::read_to_string(&baseline_path) else {
        findings.push(format!(
            "{}: missing ratchet baseline",
            baseline_path.display()
        ));
        return;
    };
    for line in baseline.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rel), Some(cap)) = (parts.next(), parts.next()) else {
            findings.push(format!("lint-baseline.txt: malformed line '{line}'"));
            continue;
        };
        let Ok(cap): Result<usize, _> = cap.parse() else {
            findings.push(format!("lint-baseline.txt: bad count in '{line}'"));
            continue;
        };
        let Ok(text) = std::fs::read_to_string(root.join(rel)) else {
            findings.push(format!("lint-baseline.txt: '{rel}' not found"));
            continue;
        };
        let actual = count_unwraps(&text);
        if actual > cap {
            findings.push(format!(
                "{rel}: unwrap ratchet regressed — {actual} production `.unwrap()`/`.expect(` sites vs baseline {cap}; propagate errors instead"
            ));
        } else if actual < cap {
            println!(
                "xtask lint: note — {rel} is below its ratchet baseline ({actual} < {cap}); tighten xtask/lint-baseline.txt"
            );
        }
    }
}

// ---- fs helpers -----------------------------------------------------------

fn list_dir(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| rd.filter_map(|e| e.ok()).map(|e| e.path()).collect())
        .unwrap_or_default();
    out.sort();
    out
}

/// Every `.rs` file under `crates/*/src`, recursively (tests/ and
/// benches/ trees are intentionally out of scope: they exercise internals
/// directly by design).
fn rust_sources(crates_dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for krate in list_dir(crates_dir) {
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut out);
        }
    }
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    for p in list_dir(dir) {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banned_sync_detection() {
        assert_eq!(
            line_uses_banned_sync("use std::sync::Mutex;"),
            Some("Mutex")
        );
        assert_eq!(
            line_uses_banned_sync("use std::sync::{Arc, RwLock};"),
            Some("RwLock")
        );
        assert_eq!(
            line_uses_banned_sync("let (tx, rx) = std::sync::mpsc::channel();"),
            Some("mpsc")
        );
        assert_eq!(line_uses_banned_sync("use std::sync::Arc;"), None);
        assert_eq!(
            line_uses_banned_sync("use std::sync::atomic::{AtomicU64, Ordering};"),
            None
        );
        // `OnceLock` is banned as itself, not via the `Once` prefix.
        assert_eq!(
            line_uses_banned_sync("static X: std::sync::OnceLock<u8> = ..."),
            Some("OnceLock")
        );
        assert_eq!(
            line_uses_banned_sync("// std::sync::Mutex in a comment"),
            None
        );
    }

    #[test]
    fn wal_call_detection() {
        assert_eq!(line_calls_wal("self.wal.publish(&batch);"), Some("publish"));
        assert_eq!(
            line_calls_wal("wal.append_sync(rec)?;"),
            Some("append_sync")
        );
        assert_eq!(line_calls_wal("self.wal.append(rec);"), Some("append"));
        assert_eq!(line_calls_wal("buckets[s].append(&mut t.redo);"), None);
        assert_eq!(line_calls_wal("out.append(&mut other);"), None);
    }

    #[test]
    fn unwrap_counting_stops_at_tests() {
        let text = "a.unwrap();\nb.expect(\"x\");\n#[cfg(test)]\nmod tests { c.unwrap(); }\n";
        assert_eq!(count_unwraps(text), 2);
        assert_eq!(count_unwraps("x.unwrap() // y.unwrap()\n"), 1);
    }

    #[test]
    fn manifest_parsing() {
        let m = "[package]\nname = \"youtopia-wal\"\n\n[dependencies]\nbytes.workspace = true\nyoutopia-storage.workspace = true\n\n[dev-dependencies]\nentangled-txn = { path = \"x\" }\n";
        assert_eq!(package_name(m).as_deref(), Some("youtopia-wal"));
        assert_eq!(
            workspace_deps(m),
            vec!["youtopia-storage".to_string(), "entangled-txn".to_string()]
        );
    }

    #[test]
    fn layering_dag_is_acyclic() {
        // The allowlist itself must be a DAG — otherwise the lint would
        // bless a cycle.
        let allowed = allowed_deps();
        fn visit(
            n: &str,
            allowed: &BTreeMap<&'static str, Vec<&'static str>>,
            path: &mut Vec<String>,
        ) {
            assert!(
                !path.iter().any(|p| p == n),
                "cycle in layering DAG: {path:?} -> {n}"
            );
            // The umbrella legitimately closes over everything; skip it
            // as a dependency target (nothing depends on it).
            path.push(n.to_string());
            for d in allowed.get(n).map(|v| v.as_slice()).unwrap_or(&[]) {
                visit(d, allowed, path);
            }
            path.pop();
        }
        for k in allowed.keys() {
            if *k == "entangled-transactions" {
                continue;
            }
            visit(k, &allowed, &mut Vec::new());
        }
    }
}
